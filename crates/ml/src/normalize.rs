//! Feature normalisation.
//!
//! The paper's training pipeline (Fig. 4) normalises the data before fitting the
//! Boosted Decision Tree Regression model.  Tree ensembles are scale-invariant, but the
//! linear and Poisson baselines are not, so the normaliser is part of the shared
//! pipeline.

use crate::dataset::Dataset;
use crate::error::MlError;

/// Normalisation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalization {
    /// Scale every feature into `[0, 1]` using its training min/max.
    MinMax,
    /// Standardise every feature to zero mean / unit variance.
    ZScore,
    /// Leave features untouched.
    None,
}

/// Per-feature statistics captured on the training set and applied to any later data.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    strategy: Normalization,
    /// (offset, scale) per feature: `normalised = (x - offset) / scale`.
    params: Vec<(f64, f64)>,
}

impl Normalizer {
    /// Fit a normaliser on the dataset's features.
    pub fn fit(data: &Dataset, strategy: Normalization) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let n_features = data.n_features();
        let mut params = Vec::with_capacity(n_features);
        for feature in 0..n_features {
            let column: Vec<f64> = (0..data.len()).map(|i| data.features(i)[feature]).collect();
            let (offset, scale) = match strategy {
                Normalization::None => (0.0, 1.0),
                Normalization::MinMax => {
                    let min = column.iter().cloned().fold(f64::INFINITY, f64::min);
                    let max = column.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let range = max - min;
                    (min, if range > 0.0 { range } else { 1.0 })
                }
                Normalization::ZScore => {
                    let mean = column.iter().sum::<f64>() / column.len() as f64;
                    let var = column.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
                        / column.len() as f64;
                    let std = var.sqrt();
                    (mean, if std > 0.0 { std } else { 1.0 })
                }
            };
            params.push((offset, scale));
        }
        Ok(Normalizer { strategy, params })
    }

    /// The strategy this normaliser was fitted with.
    pub fn strategy(&self) -> Normalization {
        self.strategy
    }

    /// Normalise a single feature vector.
    pub fn transform_row(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let (offset, scale) = self.params.get(i).copied().unwrap_or((0.0, 1.0));
                (v - offset) / scale
            })
            .collect()
    }

    /// Normalise a whole dataset (targets are left untouched).
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new(data.feature_names().to_vec());
        for i in 0..data.len() {
            out.push(self.transform_row(data.features(i)), data.target(i))
                .expect("transformed row has the same arity");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        d.push(vec![0.0, 100.0], 1.0).unwrap();
        d.push(vec![5.0, 200.0], 2.0).unwrap();
        d.push(vec![10.0, 300.0], 3.0).unwrap();
        d
    }

    #[test]
    fn minmax_maps_into_unit_interval() {
        let d = dataset();
        let norm = Normalizer::fit(&d, Normalization::MinMax).unwrap();
        let t = norm.transform_dataset(&d);
        for &v in t.feature_matrix() {
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(t.features(0), &[0.0, 0.0]);
        assert_eq!(t.features(2), &[1.0, 1.0]);
        // targets untouched
        assert_eq!(t.targets(), d.targets());
    }

    #[test]
    fn zscore_centres_and_scales() {
        let d = dataset();
        let norm = Normalizer::fit(&d, Normalization::ZScore).unwrap();
        let t = norm.transform_dataset(&d);
        for feature in 0..2 {
            let mean: f64 =
                (0..t.len()).map(|i| t.features(i)[feature]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-12);
        }
    }

    #[test]
    fn none_is_identity() {
        let d = dataset();
        let norm = Normalizer::fit(&d, Normalization::None).unwrap();
        assert_eq!(norm.transform_dataset(&d), d);
    }

    #[test]
    fn constant_features_do_not_divide_by_zero() {
        let mut d = Dataset::new(vec!["c".into()]);
        d.push(vec![4.0], 1.0).unwrap();
        d.push(vec![4.0], 2.0).unwrap();
        for strategy in [Normalization::MinMax, Normalization::ZScore] {
            let norm = Normalizer::fit(&d, strategy).unwrap();
            let t = norm.transform_dataset(&d);
            assert!(t.feature_matrix().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn fitting_on_empty_data_fails() {
        let d = Dataset::new(vec!["x".into()]);
        assert!(Normalizer::fit(&d, Normalization::MinMax).is_err());
    }

    #[test]
    fn transform_applies_training_statistics_to_new_rows() {
        let d = dataset();
        let norm = Normalizer::fit(&d, Normalization::MinMax).unwrap();
        // 20 is beyond the training max of 10 -> value > 1, using training scale
        let row = norm.transform_row(&[20.0, 100.0]);
        assert!((row[0] - 2.0).abs() < 1e-12);
        assert!((row[1] - 0.0).abs() < 1e-12);
    }
}
