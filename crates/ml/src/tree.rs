//! CART-style regression trees.
//!
//! The tree minimises the sum of squared errors: each split chooses the (feature,
//! threshold) pair with the largest variance reduction, and each leaf predicts the mean
//! target of its training rows.  Trees are the weak learner of
//! [`crate::boosting::BoostedTreesRegressor`].

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::Regressor;

/// Hyper-parameters of a single regression tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth (a depth of 0 is a single leaf).
    pub max_depth: usize,
    /// Minimum number of training rows in a leaf.
    pub min_samples_leaf: usize,
    /// Maximum number of candidate thresholds examined per feature (quantile pruning of
    /// the split search keeps training fast on large datasets).
    pub max_split_candidates: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 5,
            min_samples_leaf: 2,
            max_split_candidates: 64,
        }
    }
}

/// One node of the tree, stored in an arena.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        prediction: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Sentinel value of [`FlatTree::feature`] marking a leaf node.
pub const LEAF: u32 = u32::MAX;

/// Branch-free child select: `left` when `go_left`, else `right`.
///
/// `go_left as u32` is 0 or 1, so negating it yields an all-zeros or all-ones
/// mask and the select compiles to straight-line bit ops (or a `cmov`) instead
/// of a data-dependent branch — tree walks follow near-random split outcomes,
/// which makes that branch essentially unpredictable.
#[inline(always)]
pub(crate) fn select_child(left: u32, right: u32, go_left: bool) -> u32 {
    let mask = (go_left as u32).wrapping_neg();
    (left & mask) | (right & !mask)
}

/// A fitted tree flattened into structure-of-arrays form for cache-friendly inference:
/// four contiguous arrays indexed by node, with leaves marked by `feature == `[`LEAF`]
/// and their prediction stored in the `threshold` slot.
///
/// Traversal touches only these flat arrays — no enum discriminants, no pointer
/// chasing — which is what makes the batched prediction of
/// [`crate::BoostedTreesRegressor`] cheap enough to tabulate whole prediction tables.
/// The arrays are exposed so ensembles can concatenate many trees into one arena
/// (offsetting the child indices).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatTree {
    /// Split feature per node; [`LEAF`] for leaves.
    pub feature: Vec<u32>,
    /// Split threshold per node; the leaf prediction for leaves.
    pub threshold: Vec<f64>,
    /// Left child index per node (unused for leaves).
    pub left: Vec<u32>,
    /// Right child index per node (unused for leaves).
    pub right: Vec<u32>,
}

impl FlatTree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.feature.len()
    }

    /// Whether the tree has no nodes (an unfitted tree).
    pub fn is_empty(&self) -> bool {
        self.feature.is_empty()
    }

    /// Smallest row width that puts every split feature of the tree in bounds:
    /// `1 +` the largest split feature index, or 0 when the tree is a single
    /// leaf (or unfitted).  Rows at least this wide can be walked without
    /// per-node bounds checks.
    pub fn min_width(&self) -> usize {
        self.feature
            .iter()
            .filter(|&&feature| feature != LEAF)
            .map(|&feature| feature as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Add `scale * predict_one(row)` to `out[i]` for every row of the
    /// row-major matrix `rows` — the boosting residual update as one batched
    /// pass over the flat arrays, bit-identical to calling
    /// [`FlatTree::predict_one`] row by row.
    pub fn accumulate_into(&self, rows: &[f64], width: usize, scale: f64, out: &mut [f64]) {
        if width == 0 || self.is_empty() {
            // every row reads the same (empty or root-only) walk
            let value = self.predict_one(&[]);
            for slot in out.iter_mut() {
                *slot += scale * value;
            }
            return;
        }
        assert!(
            rows.len() == width * out.len(),
            "row-major batch of {} values does not hold {} width-{width} rows",
            rows.len(),
            out.len()
        );
        if width >= self.min_width() {
            for (slot, row) in out.iter_mut().zip(rows.chunks_exact(width)) {
                // SAFETY: `width >= min_width()` puts every split feature in
                // bounds, and child indices point into the arena by
                // construction (`flatten` preserves arena indices).
                *slot += scale * unsafe { self.leaf_unchecked(row) };
            }
        } else {
            for (slot, row) in out.iter_mut().zip(rows.chunks_exact(width)) {
                *slot += scale * self.predict_one(row);
            }
        }
    }

    /// The bounds-check-free, branch-free walk.
    ///
    /// # Safety
    ///
    /// `row.len()` must be at least [`FlatTree::min_width`] and the tree must
    /// be non-empty with in-arena child indices (always true for trees built
    /// by [`RegressionTree::flatten`]).
    #[inline]
    unsafe fn leaf_unchecked(&self, row: &[f64]) -> f64 {
        let mut index = 0usize;
        loop {
            // SAFETY: `index` starts at the root (node 0 exists: the tree is
            // non-empty per the contract) and is only ever replaced by
            // `left`/`right` values, which `flatten` builds strictly in-arena;
            // the four parallel arrays share one length.
            let feature = *self.feature.get_unchecked(index);
            let threshold = *self.threshold.get_unchecked(index);
            if feature == LEAF {
                return threshold;
            }
            // SAFETY: `feature < min_width <= row.len()` — `flatten` folds every
            // split feature into `min_width` and the caller checked the row width.
            let value = *row.get_unchecked(feature as usize);
            index = select_child(
                *self.left.get_unchecked(index),
                *self.right.get_unchecked(index),
                value <= threshold,
            ) as usize;
        }
    }

    /// Walk the flat arrays from the root; bit-identical to
    /// [`RegressionTree::predict_one`] on the tree this was flattened from.
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        if self.feature.is_empty() {
            return 0.0;
        }
        let mut index = 0usize;
        loop {
            let feature = self.feature[index];
            if feature == LEAF {
                return self.threshold[index];
            }
            let value = features.get(feature as usize).copied().unwrap_or(0.0);
            index = if value <= self.threshold[index] {
                self.left[index] as usize
            } else {
                self.right[index] as usize
            };
        }
    }
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    params: TreeParams,
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Create an unfitted tree with the given hyper-parameters.
    pub fn new(params: TreeParams) -> Self {
        RegressionTree {
            params,
            nodes: Vec::new(),
        }
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf or an unfitted tree).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], index: usize) -> usize {
            match nodes[index] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, left).max(depth_of(nodes, right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Fit the tree on a subset of rows (by index) against externally supplied targets
    /// (the boosting residuals).  `targets[i]` corresponds to `data.features(i)`.
    pub fn fit_on_indices(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        indices: &[usize],
    ) -> Result<(), MlError> {
        if data.is_empty() || indices.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if targets.len() != data.len() {
            return Err(MlError::DimensionMismatch {
                expected: data.len(),
                actual: targets.len(),
            });
        }
        self.nodes.clear();
        let mut work = indices.to_vec();
        self.build(data, targets, &mut work, 0);
        Ok(())
    }

    /// Recursively build the subtree for `indices`, returning the node index.
    fn build(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        indices: &mut [usize],
        depth: usize,
    ) -> usize {
        let mean = indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64;

        if depth >= self.params.max_depth
            || indices.len() < 2 * self.params.min_samples_leaf
            || Self::is_pure(targets, indices)
        {
            return self.push(Node::Leaf { prediction: mean });
        }

        match self.best_split(data, targets, indices) {
            None => self.push(Node::Leaf { prediction: mean }),
            Some((feature, threshold)) => {
                // partition indices in place
                let mut split_point = 0;
                for i in 0..indices.len() {
                    if data.features(indices[i])[feature] <= threshold {
                        indices.swap(i, split_point);
                        split_point += 1;
                    }
                }
                if split_point == 0 || split_point == indices.len() {
                    return self.push(Node::Leaf { prediction: mean });
                }
                // reserve a slot for this split node before recursing so the root ends
                // up at index 0
                let node_index = self.push(Node::Leaf { prediction: mean });
                let (left_slice, right_slice) = indices.split_at_mut(split_point);
                let left = self.build(data, targets, left_slice, depth + 1);
                let right = self.build(data, targets, right_slice, depth + 1);
                self.nodes[node_index] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                node_index
            }
        }
    }

    /// Flatten the fitted arena into [`FlatTree`] arrays (empty for an unfitted tree).
    /// Node indices are preserved, so the flat root is node 0 as well.
    pub fn flatten(&self) -> FlatTree {
        let mut flat = FlatTree {
            feature: Vec::with_capacity(self.nodes.len()),
            threshold: Vec::with_capacity(self.nodes.len()),
            left: Vec::with_capacity(self.nodes.len()),
            right: Vec::with_capacity(self.nodes.len()),
        };
        for node in &self.nodes {
            match *node {
                Node::Leaf { prediction } => {
                    flat.feature.push(LEAF);
                    flat.threshold.push(prediction);
                    flat.left.push(0);
                    flat.right.push(0);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    flat.feature.push(feature as u32);
                    flat.threshold.push(threshold);
                    flat.left.push(left as u32);
                    flat.right.push(right as u32);
                }
            }
        }
        flat
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn is_pure(targets: &[f64], indices: &[usize]) -> bool {
        let first = targets[indices[0]];
        indices.iter().all(|&i| (targets[i] - first).abs() < 1e-12)
    }

    /// Find the (feature, threshold) pair with the largest SSE reduction.
    fn best_split(
        &self,
        data: &Dataset,
        targets: &[f64],
        indices: &[usize],
    ) -> Option<(usize, f64)> {
        let total_sum: f64 = indices.iter().map(|&i| targets[i]).sum();
        let total_sq: f64 = indices.iter().map(|&i| targets[i] * targets[i]).sum();
        let n = indices.len() as f64;
        let parent_sse = total_sq - total_sum * total_sum / n;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)

        for feature in 0..data.n_features() {
            // candidate thresholds: sorted unique values (quantile-pruned)
            let mut values: Vec<(f64, f64)> = indices
                .iter()
                .map(|&i| (data.features(i)[feature], targets[i]))
                .collect();
            values.sort_by(|a, b| a.0.total_cmp(&b.0));

            let stride = (values.len() / self.params.max_split_candidates).max(1);

            // prefix sums for O(1) SSE evaluation at each split position
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let mut k = 0usize;
            while k + 1 < values.len() {
                left_sum += values[k].1;
                left_sq += values[k].1 * values[k].1;
                let boundary = values[k].0;
                // only evaluate at value changes, respecting the candidate stride
                let next = values[k + 1].0;
                if boundary == next || !(k + 1).is_multiple_of(stride) {
                    k += 1;
                    continue;
                }
                let left_n = (k + 1) as f64;
                let right_n = n - left_n;
                if (left_n as usize) < self.params.min_samples_leaf
                    || (right_n as usize) < self.params.min_samples_leaf
                {
                    k += 1;
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / left_n)
                    + (right_sq - right_sum * right_sum / right_n);
                let threshold = (boundary + next) / 2.0;
                if best.is_none_or(|(_, _, b)| sse < b) {
                    best = Some((feature, threshold, sse));
                }
                k += 1;
            }
        }

        best.and_then(|(feature, threshold, sse)| {
            // require an actual improvement over the parent
            if sse < parent_sse - 1e-12 {
                Some((feature, threshold))
            } else {
                None
            }
        })
    }
}

impl Regressor for RegressionTree {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        let indices: Vec<usize> = (0..data.len()).collect();
        self.fit_on_indices(data, data.targets(), &indices)
    }

    fn predict_one(&self, features: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut index = 0usize;
        loop {
            match self.nodes[index] {
                Node::Leaf { prediction } => return prediction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let value = features.get(feature).copied().unwrap_or(0.0);
                    index = if value <= threshold { left } else { right };
                }
            }
        }
    }

    fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }

    fn name(&self) -> &'static str {
        "regression-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_dataset() -> Dataset {
        // y = 1 for x < 5, y = 10 for x >= 5 — a single split should fit it perfectly
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..10 {
            let x = i as f64;
            d.push(vec![x], if x < 5.0 { 1.0 } else { 10.0 }).unwrap();
        }
        d
    }

    #[test]
    fn fits_a_step_function_exactly() {
        let mut tree = RegressionTree::new(TreeParams {
            max_depth: 3,
            min_samples_leaf: 1,
            max_split_candidates: 64,
        });
        let d = step_dataset();
        tree.fit(&d).unwrap();
        assert!(tree.is_fitted());
        assert!((tree.predict_one(&[0.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict_one(&[9.0]) - 10.0).abs() < 1e-9);
        assert!((tree.predict_one(&[4.4]) - 1.0).abs() < 1e-9);
        assert!((tree.predict_one(&[5.1]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_tree_predicts_the_mean() {
        let mut tree = RegressionTree::new(TreeParams {
            max_depth: 0,
            min_samples_leaf: 1,
            max_split_candidates: 8,
        });
        let d = step_dataset();
        tree.fit(&d).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
        assert!((tree.predict_one(&[3.0]) - 5.5).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..256 {
            d.push(vec![i as f64], (i % 17) as f64).unwrap();
        }
        let mut tree = RegressionTree::new(TreeParams {
            max_depth: 3,
            min_samples_leaf: 1,
            max_split_candidates: 256,
        });
        tree.fit(&d).unwrap();
        assert!(tree.depth() <= 3, "depth {} exceeds limit", tree.depth());
    }

    #[test]
    fn min_samples_leaf_is_enforced() {
        let d = step_dataset();
        let mut tree = RegressionTree::new(TreeParams {
            max_depth: 10,
            min_samples_leaf: 6, // cannot split 10 rows into two leaves of >= 6
            max_split_candidates: 64,
        });
        tree.fit(&d).unwrap();
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn pure_targets_yield_a_single_leaf() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..20 {
            d.push(vec![i as f64], 7.0).unwrap();
        }
        let mut tree = RegressionTree::new(TreeParams::default());
        tree.fit(&d).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict_one(&[100.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn multifeature_split_selects_the_informative_feature() {
        // feature 0 is noise, feature 1 determines the target
        let mut d = Dataset::new(vec!["noise".into(), "signal".into()]);
        for i in 0..100 {
            let noise = ((i * 37) % 11) as f64;
            let signal = (i % 2) as f64;
            d.push(vec![noise, signal], signal * 100.0).unwrap();
        }
        let mut tree = RegressionTree::new(TreeParams {
            max_depth: 1,
            min_samples_leaf: 1,
            max_split_candidates: 64,
        });
        tree.fit(&d).unwrap();
        assert!((tree.predict_one(&[5.0, 0.0]) - 0.0).abs() < 1e-9);
        assert!((tree.predict_one(&[5.0, 1.0]) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unfitted_tree_predicts_zero_and_reports_not_fitted() {
        let tree = RegressionTree::new(TreeParams::default());
        assert!(!tree.is_fitted());
        assert_eq!(tree.predict_one(&[1.0]), 0.0);
        let flat = tree.flatten();
        assert!(flat.is_empty());
        assert_eq!(flat.predict_one(&[1.0]), 0.0);
    }

    #[test]
    fn flattened_trees_predict_bit_identically() {
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        for i in 0..200 {
            let x = (i % 23) as f64;
            let y = ((i * 7) % 13) as f64;
            d.push(
                vec![x, y],
                x * 1.5 + (y * y) * 0.25 + ((i % 5) as f64) * 0.01,
            )
            .unwrap();
        }
        let mut tree = RegressionTree::new(TreeParams {
            max_depth: 6,
            min_samples_leaf: 2,
            max_split_candidates: 32,
        });
        tree.fit(&d).unwrap();
        let flat = tree.flatten();
        assert_eq!(flat.len(), tree.node_count());
        for i in 0..d.len() {
            let arena = tree.predict_one(d.features(i));
            let flattened = flat.predict_one(d.features(i));
            assert_eq!(arena.to_bits(), flattened.to_bits(), "row {i}");
        }
        // out-of-schema probes behave identically too (missing features read as 0)
        assert_eq!(
            tree.predict_one(&[3.0]).to_bits(),
            flat.predict_one(&[3.0]).to_bits()
        );
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let mut tree = RegressionTree::new(TreeParams::default());
        assert!(tree.fit(&Dataset::new(vec!["x".into()])).is_err());
    }

    #[test]
    fn min_width_reports_the_widest_split_feature() {
        let unfitted = RegressionTree::new(TreeParams::default());
        assert_eq!(unfitted.flatten().min_width(), 0);

        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()]);
        for i in 0..60 {
            // only feature 2 is informative, so every split uses it
            d.push(vec![0.0, 1.0, (i % 10) as f64], ((i % 10) / 5) as f64)
                .unwrap();
        }
        let mut tree = RegressionTree::new(TreeParams {
            max_depth: 2,
            min_samples_leaf: 1,
            max_split_candidates: 32,
        });
        tree.fit(&d).unwrap();
        assert_eq!(tree.flatten().min_width(), 3);
    }

    #[test]
    fn accumulate_into_matches_the_per_row_loop() {
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        for i in 0..150 {
            let x = (i % 17) as f64;
            let y = ((i * 3) % 11) as f64;
            d.push(vec![x, y], x * 0.5 + y * y * 0.1).unwrap();
        }
        let mut tree = RegressionTree::new(TreeParams::default());
        tree.fit(&d).unwrap();
        let flat = tree.flatten();

        let scale = 0.15;
        let mut batched = vec![1.25; d.len()];
        flat.accumulate_into(d.feature_matrix(), d.n_features(), scale, &mut batched);
        for (i, value) in batched.iter().enumerate() {
            let looped = 1.25 + scale * flat.predict_one(d.features(i));
            assert_eq!(looped.to_bits(), value.to_bits(), "row {i}");
        }

        // narrow rows (width 1 < min_width) take the checked fallback
        let narrow: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut narrow_out = vec![0.0; 20];
        flat.accumulate_into(&narrow, 1, scale, &mut narrow_out);
        for (i, value) in narrow.iter().enumerate() {
            let looped = scale * flat.predict_one(&[*value]);
            assert_eq!(looped.to_bits(), narrow_out[i].to_bits(), "row {i}");
        }

        // width-0 batches broadcast the empty-row walk
        let mut zero_width = vec![2.0; 4];
        flat.accumulate_into(&[], 0, scale, &mut zero_width);
        for slot in &zero_width {
            assert_eq!(
                slot.to_bits(),
                (2.0 + scale * flat.predict_one(&[])).to_bits()
            );
        }
    }
}
