//! Error metrics and error histograms.
//!
//! The paper reports prediction accuracy as the *absolute error* `|measured −
//! predicted|` and the *percent error* `100 · absolute / measured` (Eqs. 5–6),
//! aggregated per thread count (Tables IV–V) and as histograms of absolute errors
//! (Figs. 7–8).  This module provides those metrics plus the usual regression scores.

/// Absolute errors `|measured - predicted|`, element-wise.
pub fn absolute_errors(measured: &[f64], predicted: &[f64]) -> Vec<f64> {
    measured
        .iter()
        .zip(predicted)
        .map(|(m, p)| (m - p).abs())
        .collect()
}

/// Percent errors `100 * |measured - predicted| / measured`, element-wise.
/// Rows with a zero measured value are reported as 0 to avoid dividing by zero.
pub fn percent_errors(measured: &[f64], predicted: &[f64]) -> Vec<f64> {
    measured
        .iter()
        .zip(predicted)
        .map(|(m, p)| {
            if m.abs() < f64::EPSILON {
                0.0
            } else {
                100.0 * (m - p).abs() / m.abs()
            }
        })
        .collect()
}

/// Mean absolute error (Eq. 5 averaged over the evaluation set).
pub fn mean_absolute_error(measured: &[f64], predicted: &[f64]) -> f64 {
    mean(&absolute_errors(measured, predicted))
}

/// Mean absolute percent error (Eq. 6 averaged over the evaluation set), in percent.
pub fn mean_absolute_percent_error(measured: &[f64], predicted: &[f64]) -> f64 {
    mean(&percent_errors(measured, predicted))
}

/// Root mean squared error.
pub fn root_mean_squared_error(measured: &[f64], predicted: &[f64]) -> f64 {
    if measured.is_empty() {
        return 0.0;
    }
    let mse = measured
        .iter()
        .zip(predicted)
        .map(|(m, p)| (m - p) * (m - p))
        .sum::<f64>()
        / measured.len() as f64;
    mse.sqrt()
}

/// Coefficient of determination R².  Returns 0 for fewer than two samples or a constant
/// target.
pub fn r_squared(measured: &[f64], predicted: &[f64]) -> f64 {
    if measured.len() < 2 {
        return 0.0;
    }
    let mean_measured = mean(measured);
    let ss_tot: f64 = measured.iter().map(|m| (m - mean_measured).powi(2)).sum();
    if ss_tot <= 0.0 {
        return 0.0;
    }
    let ss_res: f64 = measured
        .iter()
        .zip(predicted)
        .map(|(m, p)| (m - p).powi(2))
        .sum();
    1.0 - ss_res / ss_tot
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Histogram of (absolute) prediction errors with explicit bin upper bounds, matching
/// the presentation of the paper's Figs. 7 and 8.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorHistogram {
    upper_bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
}

impl ErrorHistogram {
    /// The bin upper bounds used for the host error histogram in the paper's Fig. 7.
    pub fn paper_host_bins() -> Vec<f64> {
        vec![0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.1, 0.15, 0.2]
    }

    /// The bin upper bounds used for the device error histogram in the paper's Fig. 8.
    pub fn paper_device_bins() -> Vec<f64> {
        vec![
            0.015, 0.03, 0.04, 0.05, 0.08, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 1.0, 1.5, 2.0,
        ]
    }

    /// Build a histogram of `errors` using the (strictly increasing) `upper_bounds`.
    /// Errors larger than the last bound are counted in the overflow bucket.
    pub fn new(mut upper_bounds: Vec<f64>, errors: &[f64]) -> Self {
        upper_bounds.sort_by(f64::total_cmp);
        upper_bounds.dedup();
        let mut counts = vec![0u64; upper_bounds.len()];
        let mut overflow = 0u64;
        for &error in errors {
            match upper_bounds.iter().position(|&bound| error <= bound) {
                Some(bin) => counts[bin] += 1,
                None => overflow += 1,
            }
        }
        ErrorHistogram {
            upper_bounds,
            counts,
            overflow,
        }
    }

    /// The bin upper bounds.
    pub fn upper_bounds(&self) -> &[f64] {
        &self.upper_bounds
    }

    /// Counts per bin (same order as [`ErrorHistogram::upper_bounds`]).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of errors larger than the last bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of errors accounted for.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// Fraction of errors that fall at or below `bound` (interpolating to the next bin
    /// boundary).
    pub fn fraction_below(&self, bound: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let below: u64 = self
            .upper_bounds
            .iter()
            .zip(&self.counts)
            .filter(|(b, _)| **b <= bound + 1e-12)
            .map(|(_, c)| *c)
            .sum();
        below as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_and_percent_errors_match_the_paper_formulas() {
        let measured = vec![2.0, 4.0];
        let predicted = vec![1.5, 5.0];
        assert_eq!(absolute_errors(&measured, &predicted), vec![0.5, 1.0]);
        assert_eq!(percent_errors(&measured, &predicted), vec![25.0, 25.0]);
        assert!((mean_absolute_error(&measured, &predicted) - 0.75).abs() < 1e-12);
        assert!((mean_absolute_percent_error(&measured, &predicted) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn zero_measured_values_do_not_divide_by_zero() {
        let e = percent_errors(&[0.0, 1.0], &[1.0, 1.0]);
        assert_eq!(e[0], 0.0);
        assert_eq!(e[1], 0.0);
    }

    #[test]
    fn rmse_and_r2() {
        let measured = vec![1.0, 2.0, 3.0, 4.0];
        let exact = measured.clone();
        assert_eq!(root_mean_squared_error(&measured, &exact), 0.0);
        assert!((r_squared(&measured, &exact) - 1.0).abs() < 1e-12);

        let constant = vec![2.5; 4];
        assert!(r_squared(&measured, &constant) <= 0.0 + 1e-12);
        assert!(root_mean_squared_error(&measured, &constant) > 0.0);

        // degenerate inputs
        assert_eq!(root_mean_squared_error(&[], &[]), 0.0);
        assert_eq!(r_squared(&[1.0], &[1.0]), 0.0);
        assert_eq!(r_squared(&[5.0, 5.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn histogram_counts_and_overflow() {
        let errors = vec![0.005, 0.015, 0.02, 0.09, 5.0];
        let hist = ErrorHistogram::new(vec![0.01, 0.02, 0.1], &errors);
        assert_eq!(hist.counts(), &[1, 2, 1]);
        assert_eq!(hist.overflow(), 1);
        assert_eq!(hist.total(), 5);
        assert!((hist.fraction_below(0.02) - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(hist.fraction_below(100.0), 4.0 / 5.0);
    }

    #[test]
    fn histogram_sorts_and_dedups_bounds() {
        let hist = ErrorHistogram::new(vec![0.2, 0.1, 0.2], &[0.15]);
        assert_eq!(hist.upper_bounds(), &[0.1, 0.2]);
        assert_eq!(hist.counts(), &[0, 1]);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let hist = ErrorHistogram::new(vec![0.1], &[]);
        assert_eq!(hist.total(), 0);
        assert_eq!(hist.fraction_below(1.0), 0.0);
    }

    #[test]
    fn paper_bins_are_increasing() {
        for bins in [
            ErrorHistogram::paper_host_bins(),
            ErrorHistogram::paper_device_bins(),
        ] {
            for pair in bins.windows(2) {
                assert!(pair[0] < pair[1] || (pair[0] - pair[1]).abs() < 1e-12);
            }
        }
    }
}
