//! Property-based tests for the ML crate.

use proptest::prelude::*;
use wd_ml::{
    metrics, BoostedTreesRegressor, BoostingParams, Dataset, ErrorHistogram, LinearRegressor,
    Normalization, Normalizer, RegressionTree, Regressor, TreeParams,
};

fn arb_dataset(max_rows: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, -50.0f64..50.0), 4..max_rows).prop_map(
        |rows| {
            let mut data = Dataset::new(vec!["x0".into(), "x1".into()]);
            for (x0, x1, noise) in rows {
                // a deterministic target with mild nonlinearity
                let y = 0.5 * x0 + (x1 / 25.0).floor() * 10.0 + noise * 0.01;
                data.push(vec![x0, x1], y).unwrap();
            }
            data
        },
    )
}

proptest! {
    /// Train/test splitting partitions the rows exactly and is deterministic per seed.
    #[test]
    fn split_partitions_rows(data in arb_dataset(60), fraction in 0.0f64..=1.0, seed in 0u64..100) {
        let (train_a, test_a) = data.train_test_split(fraction, seed);
        let (train_b, test_b) = data.train_test_split(fraction, seed);
        prop_assert_eq!(train_a.len() + test_a.len(), data.len());
        prop_assert_eq!(train_a, train_b);
        prop_assert_eq!(test_a, test_b);
    }

    /// Min-max normalisation maps every training feature into [0, 1].
    #[test]
    fn minmax_is_bounded(data in arb_dataset(60)) {
        let normalizer = Normalizer::fit(&data, Normalization::MinMax).unwrap();
        let transformed = normalizer.transform_dataset(&data);
        for &value in transformed.feature_matrix() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&value));
        }
    }

    /// A regression tree's predictions on its own training data never have a larger
    /// mean-squared error than the constant (mean) predictor.
    #[test]
    fn tree_is_no_worse_than_the_mean(data in arb_dataset(80)) {
        let mut tree = RegressionTree::new(TreeParams::default());
        tree.fit(&data).unwrap();
        let predictions = tree.predict_batch(data.feature_matrix(), data.n_features());
        let tree_rmse = metrics::root_mean_squared_error(data.targets(), &predictions);
        let mean = data.target_mean();
        let mean_rmse = metrics::root_mean_squared_error(
            data.targets(),
            &vec![mean; data.len()],
        );
        prop_assert!(tree_rmse <= mean_rmse + 1e-9);
    }

    /// Boosted trees fit the training data roughly as well as (usually better than) a
    /// single tree of the same depth, improve monotonically over boosting rounds in
    /// aggregate, and always produce finite predictions.
    #[test]
    fn boosting_training_error_is_controlled(data in arb_dataset(60)) {
        let tree_params = TreeParams { max_depth: 3, min_samples_leaf: 2, max_split_candidates: 16 };
        let mut single = RegressionTree::new(tree_params);
        single.fit(&data).unwrap();
        let mut boosted = BoostedTreesRegressor::new(BoostingParams {
            n_estimators: 80,
            learning_rate: 0.25,
            subsample: 1.0,
            tree: tree_params,
            seed: 1,
        });
        boosted.fit(&data).unwrap();
        let single_rmse = metrics::root_mean_squared_error(
            data.targets(), &single.predict_batch(data.feature_matrix(), data.n_features()));
        let boosted_rmse = metrics::root_mean_squared_error(
            data.targets(), &boosted.predict_batch(data.feature_matrix(), data.n_features()));
        // with enough rounds the ensemble is not meaningfully worse than the greedy
        // single tree on its own training data (small slack for shrinkage not having
        // fully converged on awkward datasets)
        prop_assert!(boosted_rmse <= single_rmse * 1.05 + 0.05,
            "boosted {boosted_rmse} vs single tree {single_rmse}");
        // the staged training loss never increases by more than numerical noise overall
        let losses = boosted.staged_training_mse(&data);
        prop_assert!(*losses.last().unwrap() <= losses.first().unwrap() + 1e-9);
        for i in 0..data.len() {
            prop_assert!(boosted.predict_one(data.features(i)).is_finite());
        }
        // the flat-forest batch path is bit-identical to the per-row walk
        let batched = boosted.predict_batch(data.feature_matrix(), data.n_features());
        for (i, &prediction) in batched.iter().enumerate() {
            prop_assert_eq!(
                prediction.to_bits(),
                boosted.predict_one(data.features(i)).to_bits(),
                "row {} of the batched prediction diverged", i);
        }
    }

    /// Every batch-kernel lane of the boosted ensemble — seed reference, cache-blocked
    /// branch-free, and (with `--features simd`) the lockstep lane — produces
    /// bit-identical predictions to `predict_one` accumulation, on full-width rows,
    /// batch sizes that are not a multiple of the lane count, width-1 (narrow) rows
    /// and empty batches.
    #[test]
    fn batch_kernel_lanes_are_bit_identical(
        data in arb_dataset(60),
        prefix_rows in 0usize..9,
        seed in 0u64..20,
    ) {
        let mut model = BoostedTreesRegressor::new(BoostingParams {
            n_estimators: 30,
            learning_rate: 0.2,
            subsample: 0.8,
            tree: TreeParams { max_depth: 4, min_samples_leaf: 2, max_split_candidates: 16 },
            seed,
        });
        model.fit(&data).unwrap();
        let width = data.n_features();

        // full batch plus an arbitrary prefix (odd sizes exercise block/lane tails)
        let prefix = prefix_rows.min(data.len());
        for rows in [data.feature_matrix(), &data.feature_matrix()[..prefix * width]] {
            let reference = model.predict_batch_reference(rows, width);
            let blocked = model.predict_batch_blocked(rows, width);
            let dispatched = model.predict_batch(rows, width);
            prop_assert_eq!(reference.len(), rows.len() / width);
            for (i, row) in rows.chunks_exact(width).enumerate() {
                let one = model.predict_one(row);
                prop_assert_eq!(one.to_bits(), reference[i].to_bits(), "reference row {}", i);
                prop_assert_eq!(one.to_bits(), blocked[i].to_bits(), "blocked row {}", i);
                prop_assert_eq!(one.to_bits(), dispatched[i].to_bits(), "dispatch row {}", i);
            }
            #[cfg(feature = "simd")]
            {
                let simd = model.predict_batch_simd(rows, width);
                for (i, value) in simd.iter().enumerate() {
                    prop_assert_eq!(reference[i].to_bits(), value.to_bits(), "simd row {}", i);
                }
            }
        }

        // width-1 rows are narrower than the 2-feature schema: missing features
        // must read as 0.0 on every lane
        let narrow: Vec<f64> = data.feature_matrix().iter().step_by(width).take(11).copied().collect();
        let narrow_blocked = model.predict_batch_blocked(&narrow, 1);
        let narrow_dispatched = model.predict_batch(&narrow, 1);
        #[cfg(feature = "simd")]
        let narrow_simd = model.predict_batch_simd(&narrow, 1);
        for (i, value) in narrow.iter().enumerate() {
            let one = model.predict_one(&[*value]);
            prop_assert_eq!(one.to_bits(), narrow_blocked[i].to_bits(), "narrow row {}", i);
            prop_assert_eq!(one.to_bits(), narrow_dispatched[i].to_bits(), "narrow row {}", i);
            #[cfg(feature = "simd")]
            prop_assert_eq!(one.to_bits(), narrow_simd[i].to_bits(), "narrow simd row {}", i);
        }

        // empty batches predict nothing on every lane
        prop_assert!(model.predict_batch(&[], width).is_empty());
        prop_assert!(model.predict_batch_reference(&[], width).is_empty());
        prop_assert!(model.predict_batch_blocked(&[], width).is_empty());
        #[cfg(feature = "simd")]
        prop_assert!(model.predict_batch_simd(&[], width).is_empty());
    }

    /// Linear regression reproduces an exactly linear relationship to high precision.
    #[test]
    fn linear_regression_recovers_linear_targets(
        intercept in -10.0f64..10.0,
        beta0 in -5.0f64..5.0,
        beta1 in -5.0f64..5.0,
        xs in proptest::collection::vec((0.0f64..20.0, 0.0f64..20.0), 8..40),
    ) {
        // require some spread so the system is well conditioned
        prop_assume!(xs.iter().any(|(a, _)| *a > 1.0) && xs.iter().any(|(_, b)| *b > 1.0));
        let mut data = Dataset::new(vec!["a".into(), "b".into()]);
        for (a, b) in &xs {
            data.push(vec![*a, *b], intercept + beta0 * a + beta1 * b).unwrap();
        }
        let mut model = LinearRegressor::with_ridge(1e-9);
        model.fit(&data).unwrap();
        for (a, b) in xs.iter().take(5) {
            let expected = intercept + beta0 * a + beta1 * b;
            let predicted = model.predict_one(&[*a, *b]);
            prop_assert!((expected - predicted).abs() < 1e-4,
                "expected {expected}, predicted {predicted}");
        }
    }

    /// Metrics invariants: errors are non-negative, MAE ≤ RMSE, histogram conserves counts.
    #[test]
    fn metric_invariants(
        pairs in proptest::collection::vec((0.01f64..100.0, 0.0f64..100.0), 1..50),
    ) {
        let measured: Vec<f64> = pairs.iter().map(|(m, _)| *m).collect();
        let predicted: Vec<f64> = pairs.iter().map(|(_, p)| *p).collect();
        let mae = metrics::mean_absolute_error(&measured, &predicted);
        let rmse = metrics::root_mean_squared_error(&measured, &predicted);
        let mape = metrics::mean_absolute_percent_error(&measured, &predicted);
        prop_assert!(mae >= 0.0 && rmse >= 0.0 && mape >= 0.0);
        prop_assert!(mae <= rmse + 1e-9, "MAE {mae} must not exceed RMSE {rmse}");

        let errors = metrics::absolute_errors(&measured, &predicted);
        let histogram = ErrorHistogram::new(vec![0.1, 1.0, 10.0], &errors);
        prop_assert_eq!(histogram.total() as usize, errors.len());
    }
}
