//! Execution statistics reported alongside simulated measurements.

/// Detailed breakdown of one simulated execution, useful for reports and debugging the
/// performance model.  All times are in seconds, all rates in bytes/second.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecutionStats {
    /// Bytes processed by the host.
    pub host_bytes: u64,
    /// Bytes processed by all accelerators.
    pub device_bytes: u64,
    /// Aggregate effective scan rate achieved on the host.
    pub host_rate: f64,
    /// Aggregate effective scan rate achieved on the accelerators (compute only).
    pub device_rate: f64,
    /// Host threads actually used.
    pub host_threads: u32,
    /// Accelerator threads actually used (summed over accelerators).
    pub device_threads: u32,
    /// Time spent transferring data over PCIe (both directions, all accelerators).
    pub transfer_seconds: f64,
    /// Fixed offload launch overhead (all accelerators).
    pub launch_seconds: f64,
    /// Host compute time excluding setup.
    pub host_compute_seconds: f64,
    /// Device compute time excluding transfers/launch/setup (max over accelerators).
    pub device_compute_seconds: f64,
}

impl ExecutionStats {
    /// Total bytes processed on any device.
    pub fn total_bytes(&self) -> u64 {
        self.host_bytes + self.device_bytes
    }

    /// Fraction of bytes processed by the host (0 if the workload was empty).
    pub fn host_share(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.host_bytes as f64 / total as f64
        }
    }

    /// Fraction of the device-side wall clock spent on offload overhead rather than
    /// compute (0 when nothing was offloaded).
    pub fn offload_overhead_share(&self) -> f64 {
        let overhead = self.transfer_seconds + self.launch_seconds;
        let total = overhead + self.device_compute_seconds;
        if total <= 0.0 {
            0.0
        } else {
            overhead / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_safe_on_empty_stats() {
        let s = ExecutionStats::default();
        assert_eq!(s.host_share(), 0.0);
        assert_eq!(s.offload_overhead_share(), 0.0);
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn host_share_reflects_partition() {
        let s = ExecutionStats {
            host_bytes: 600,
            device_bytes: 400,
            ..Default::default()
        };
        assert!((s.host_share() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn overhead_share_combines_transfer_and_launch() {
        let s = ExecutionStats {
            transfer_seconds: 0.3,
            launch_seconds: 0.2,
            device_compute_seconds: 0.5,
            ..Default::default()
        };
        assert!((s.offload_overhead_share() - 0.5).abs() < 1e-12);
    }
}
