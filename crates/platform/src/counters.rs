//! Execution statistics reported alongside simulated measurements.

/// Detailed breakdown of one simulated execution, useful for reports and debugging the
/// performance model.  All times are in seconds, all rates in bytes/second.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecutionStats {
    /// Bytes processed by the host.
    pub host_bytes: u64,
    /// Bytes processed by all accelerators.
    pub device_bytes: u64,
    /// Aggregate effective scan rate achieved on the host.
    pub host_rate: f64,
    /// Aggregate effective scan rate achieved on the accelerators (compute only).
    pub device_rate: f64,
    /// Host threads actually used.
    pub host_threads: u32,
    /// Accelerator threads actually used (summed over accelerators).
    pub device_threads: u32,
    /// Time spent transferring data over PCIe (both directions, all accelerators).
    pub transfer_seconds: f64,
    /// Fixed offload launch overhead (all accelerators).
    pub launch_seconds: f64,
    /// Host compute time excluding setup.
    pub host_compute_seconds: f64,
    /// Device compute time excluding transfers/launch/setup (max over accelerators).
    pub device_compute_seconds: f64,
}

impl ExecutionStats {
    /// Total bytes processed on any device.
    pub fn total_bytes(&self) -> u64 {
        self.host_bytes + self.device_bytes
    }

    /// Fraction of bytes processed by the host (0 if the workload was empty).
    pub fn host_share(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.host_bytes as f64 / total as f64
        }
    }

    /// Fraction of the device-side wall clock spent on offload overhead rather than
    /// compute (0 when nothing was offloaded).
    pub fn offload_overhead_share(&self) -> f64 {
        let overhead = self.transfer_seconds + self.launch_seconds;
        let total = overhead + self.device_compute_seconds;
        if total <= 0.0 {
            0.0
        } else {
            overhead / total
        }
    }

    /// Publish this breakdown to `recorder` as gauges named `{scope}.exec.*` — one
    /// gauge per field plus the derived [`ExecutionStats::host_share`] and
    /// [`ExecutionStats::offload_overhead_share`] ratios.  Gauges are last-write-wins,
    /// so publishing the stats of several executions under one scope keeps the most
    /// recent breakdown (publish under distinct scopes to keep them all).
    pub fn publish(&self, recorder: &dyn wd_obs::Recorder, scope: &str) {
        if !recorder.enabled() {
            return;
        }
        for (name, value) in [
            ("host_bytes", self.host_bytes as f64),
            ("device_bytes", self.device_bytes as f64),
            ("host_rate", self.host_rate),
            ("device_rate", self.device_rate),
            ("host_threads", f64::from(self.host_threads)),
            ("device_threads", f64::from(self.device_threads)),
            ("transfer_seconds", self.transfer_seconds),
            ("launch_seconds", self.launch_seconds),
            ("host_compute_seconds", self.host_compute_seconds),
            ("device_compute_seconds", self.device_compute_seconds),
            ("host_share", self.host_share()),
            ("offload_overhead_share", self.offload_overhead_share()),
        ] {
            recorder.gauge(&format!("{scope}.exec.{name}"), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_safe_on_empty_stats() {
        let s = ExecutionStats::default();
        assert_eq!(s.host_share(), 0.0);
        assert_eq!(s.offload_overhead_share(), 0.0);
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn host_share_reflects_partition() {
        let s = ExecutionStats {
            host_bytes: 600,
            device_bytes: 400,
            ..Default::default()
        };
        assert!((s.host_share() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn publish_writes_one_gauge_per_field() {
        let s = ExecutionStats {
            host_bytes: 600,
            device_bytes: 400,
            host_threads: 24,
            transfer_seconds: 0.25,
            ..Default::default()
        };
        let registry = wd_obs::Registry::new();
        s.publish(&registry, "em");
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.gauges.get("em.exec.host_bytes"), Some(&600.0));
        assert_eq!(snapshot.gauges.get("em.exec.host_threads"), Some(&24.0));
        assert_eq!(snapshot.gauges.get("em.exec.transfer_seconds"), Some(&0.25));
        assert_eq!(snapshot.gauges.get("em.exec.host_share"), Some(&0.6));
        assert_eq!(snapshot.gauges.len(), 12);

        // a disabled recorder short-circuits
        s.publish(&wd_obs::NoopRecorder, "em");
    }

    #[test]
    fn overhead_share_combines_transfer_and_launch() {
        let s = ExecutionStats {
            transfer_seconds: 0.3,
            launch_seconds: 0.2,
            device_compute_seconds: 0.5,
            ..Default::default()
        };
        assert!((s.offload_overhead_share() - 0.5).abs() < 1e-12);
    }
}
