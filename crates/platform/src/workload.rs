//! Workload description consumed by the performance model.
//!
//! The paper targets *divisible* data-parallel workloads: a workload can be split at an
//! arbitrary ratio between host and device (the "DNA sequence fraction" parameter).
//! A [`WorkloadProfile`] captures the properties the analytical model needs: how many
//! bytes have to be scanned, how expensive a byte is relative to the calibrated DNA DFA
//! scan, how much of the work is inherently serial, and how SIMD-friendly it is.

/// A divisible data-parallel workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Human readable name (e.g. the genome being analysed).
    pub name: String,
    /// Total input size in bytes.
    pub bytes: u64,
    /// Per-byte compute cost relative to the reference DNA DFA scan (1.0).
    /// A value of 2.0 means every byte costs twice as many cycles.
    pub cost_factor: f64,
    /// Fraction of the work that cannot be parallelised (automaton construction,
    /// result merging); charged at single-thread speed.
    pub serial_fraction: f64,
    /// Fraction of the per-byte work that profits from wide SIMD units (0..=1).
    pub vectorizable: f64,
    /// Fixed start-up cost on the host (thread pool creation, input mapping) in seconds.
    pub host_setup_seconds: f64,
    /// Fixed start-up cost on an accelerator (offload runtime initialisation, automaton
    /// upload) in seconds, *in addition to* the PCIe transfer of the input fraction.
    pub device_setup_seconds: f64,
    /// Bytes of results produced per input byte (transferred back from the device).
    pub result_bytes_per_input_byte: f64,
}

impl WorkloadProfile {
    /// Reference workload of the paper: DNA sequence (motif) analysis of `bytes` bytes.
    ///
    /// The per-byte cost of 1.0 is the calibration anchor of
    /// [`DeviceSpec::scan_rate_per_thread`](crate::DeviceSpec::scan_rate_per_thread).
    pub fn dna_scan(name: &str, bytes: u64) -> Self {
        WorkloadProfile {
            name: name.to_string(),
            bytes,
            cost_factor: 1.0,
            serial_fraction: 0.003,
            vectorizable: 0.85,
            host_setup_seconds: 0.045,
            device_setup_seconds: 0.05,
            result_bytes_per_input_byte: 1.0 / 4096.0,
        }
    }

    /// A synthetic compute-bound workload (e.g. an n-body style kernel): expensive per
    /// byte, highly vectorizable, negligible result traffic.  Used by the
    /// `custom_workload` example and the ablation benches.
    pub fn compute_bound(name: &str, bytes: u64, cost_factor: f64) -> Self {
        WorkloadProfile {
            name: name.to_string(),
            bytes,
            cost_factor,
            serial_fraction: 0.002,
            vectorizable: 0.97,
            host_setup_seconds: 0.02,
            device_setup_seconds: 0.12,
            result_bytes_per_input_byte: 1.0 / 65536.0,
        }
    }

    /// A memory/transfer-bound workload: cheap per byte so that PCIe transfer dominates
    /// offloading.  Offloading such workloads rarely pays off — useful for exercising
    /// the "CPU-only is optimal" regime.
    pub fn streaming(name: &str, bytes: u64) -> Self {
        WorkloadProfile {
            name: name.to_string(),
            bytes,
            cost_factor: 0.25,
            serial_fraction: 0.01,
            vectorizable: 0.4,
            host_setup_seconds: 0.02,
            device_setup_seconds: 0.12,
            result_bytes_per_input_byte: 1.0 / 1024.0,
        }
    }

    /// Return a copy of this workload describing only `fraction` (0..=1) of the input.
    ///
    /// Fixed setup costs are preserved (they do not shrink with the input share) while
    /// the byte count scales.  A zero fraction yields a zero-byte share.
    pub fn fraction(&self, fraction: f64) -> WorkloadProfile {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut shared = self.clone();
        shared.bytes = (self.bytes as f64 * fraction).round() as u64;
        shared
    }

    /// Input size in megabytes (decimal, as used on the paper's x-axes).
    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / 1e6
    }

    /// Input size in gigabytes (decimal).
    pub fn gigabytes(&self) -> f64 {
        self.bytes as f64 / 1e9
    }

    /// Whether this share contains no work.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Validate invariants (fractions within [0, 1], non-negative costs).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.serial_fraction) {
            return Err(format!(
                "serial_fraction must be in [0,1], got {}",
                self.serial_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.vectorizable) {
            return Err(format!(
                "vectorizable must be in [0,1], got {}",
                self.vectorizable
            ));
        }
        if self.cost_factor <= 0.0 {
            return Err(format!(
                "cost_factor must be positive, got {}",
                self.cost_factor
            ));
        }
        if self.host_setup_seconds < 0.0
            || self.device_setup_seconds < 0.0
            || self.result_bytes_per_input_byte < 0.0
        {
            return Err("setup costs and result ratio must be non-negative".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for w in [
            WorkloadProfile::dna_scan("human", 3_170_000_000),
            WorkloadProfile::compute_bound("nbody", 1 << 30, 8.0),
            WorkloadProfile::streaming("stream", 1 << 30),
        ] {
            w.validate().unwrap();
            assert!(w.bytes > 0);
        }
    }

    #[test]
    fn fraction_scales_bytes_but_not_setup() {
        let w = WorkloadProfile::dna_scan("human", 1_000_000_000);
        let half = w.fraction(0.5);
        assert_eq!(half.bytes, 500_000_000);
        assert_eq!(half.host_setup_seconds, w.host_setup_seconds);
        assert_eq!(half.device_setup_seconds, w.device_setup_seconds);

        let none = w.fraction(0.0);
        assert!(none.is_empty());

        let all = w.fraction(1.0);
        assert_eq!(all.bytes, w.bytes);
    }

    #[test]
    fn fraction_is_clamped() {
        let w = WorkloadProfile::dna_scan("human", 1_000);
        assert_eq!(w.fraction(2.0).bytes, 1_000);
        assert_eq!(w.fraction(-1.0).bytes, 0);
    }

    #[test]
    fn unit_conversions() {
        let w = WorkloadProfile::dna_scan("x", 3_250_000_000);
        assert!((w.megabytes() - 3250.0).abs() < 1e-9);
        assert!((w.gigabytes() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        let mut w = WorkloadProfile::dna_scan("x", 10);
        w.serial_fraction = 1.5;
        assert!(w.validate().is_err());
        w.serial_fraction = 0.1;
        w.vectorizable = -0.1;
        assert!(w.validate().is_err());
        w.vectorizable = 0.5;
        w.cost_factor = 0.0;
        assert!(w.validate().is_err());
    }
}
