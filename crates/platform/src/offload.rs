//! Offload (host → accelerator) cost model.
//!
//! The paper uses the Intel offload programming model: the host ships the device's
//! share of the DNA sequence over PCIe, launches the kernel, and the co-processor's
//! results travel back.  Offloaded work overlaps with the host's own share, so the
//! total time is `max(T_host, T_device)` where `T_device` includes all offload costs.

/// PCIe / offload-runtime cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadModel {
    /// Effective host→device transfer bandwidth in bytes/second.
    pub bandwidth_to_device: f64,
    /// Effective device→host transfer bandwidth in bytes/second.
    pub bandwidth_to_host: f64,
    /// Fixed per-offload latency: runtime initialisation, kernel launch, pinning, in seconds.
    pub launch_overhead_s: f64,
    /// Per-transfer latency (one-way) in seconds.
    pub per_transfer_latency_s: f64,
}

impl OffloadModel {
    /// PCIe gen-2 x16 link to a Xeon Phi 7120P with the Intel offload runtime,
    /// as on the paper's evaluation machine.
    pub fn pcie_gen2_x16() -> Self {
        OffloadModel {
            bandwidth_to_device: 6.2e9,
            bandwidth_to_host: 6.6e9,
            launch_overhead_s: 0.06,
            per_transfer_latency_s: 25e-6,
        }
    }

    /// An idealised interconnect with negligible cost (useful to isolate compute effects
    /// in ablation benches).
    pub fn ideal() -> Self {
        OffloadModel {
            bandwidth_to_device: 1e15,
            bandwidth_to_host: 1e15,
            launch_overhead_s: 0.0,
            per_transfer_latency_s: 0.0,
        }
    }

    /// Time to move `bytes` from the host to the device.
    pub fn transfer_to_device(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.per_transfer_latency_s + bytes as f64 / self.bandwidth_to_device
    }

    /// Time to move `bytes` of results back from the device to the host.
    pub fn transfer_to_host(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.per_transfer_latency_s + bytes as f64 / self.bandwidth_to_host
    }

    /// Total offload overhead for an input of `input_bytes` producing `result_bytes`.
    pub fn total_overhead(&self, input_bytes: u64, result_bytes: u64) -> f64 {
        if input_bytes == 0 && result_bytes == 0 {
            return 0.0;
        }
        self.launch_overhead_s
            + self.transfer_to_device(input_bytes)
            + self.transfer_to_host(result_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_zero_cost() {
        let o = OffloadModel::pcie_gen2_x16();
        assert_eq!(o.transfer_to_device(0), 0.0);
        assert_eq!(o.transfer_to_host(0), 0.0);
        assert_eq!(o.total_overhead(0, 0), 0.0);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let o = OffloadModel::pcie_gen2_x16();
        let t1 = o.transfer_to_device(1_000_000_000);
        let t2 = o.transfer_to_device(2_000_000_000);
        // latency is tiny compared to a GB-scale transfer
        assert!((t2 / t1 - 2.0).abs() < 0.01);
        // a 1 GB transfer over ~6 GB/s takes roughly 160 ms
        assert!(t1 > 0.1 && t1 < 0.3, "unexpected transfer time {t1}");
    }

    #[test]
    fn overhead_includes_launch_cost() {
        let o = OffloadModel::pcie_gen2_x16();
        let overhead = o.total_overhead(1, 1);
        assert!(overhead >= o.launch_overhead_s);
    }

    #[test]
    fn ideal_link_is_free() {
        let o = OffloadModel::ideal();
        assert!(o.total_overhead(10_000_000_000, 10_000_000) < 1e-4);
    }
}
