//! The heterogeneous platform: host + accelerators + interconnect + noise.
//!
//! [`HeterogeneousPlatform::execute`] is the simulator's front door: it takes a
//! workload, a host/device partition and per-device execution configurations and
//! returns a simulated [`Measurement`] — the quantity the paper's optimization methods
//! treat as a black box.  [`HeterogeneousPlatform::execute_many`] is the batched front
//! door: it scores many [`ExecutionRequest`]s against one workload in a single
//! rayon-parallel pass, which is what the unified evaluation layer's
//! `evaluate_batch` builds on.  The noise model is a pure hash of the measurement
//! context, so batched execution is bit-identical to one-at-a-time execution.

use rayon::prelude::*;

use crate::affinity::Affinity;
use crate::counters::ExecutionStats;
use crate::device::{DeviceKind, DeviceSpec};
use crate::error::PlatformError;
use crate::noise::NoiseModel;
use crate::offload::OffloadModel;
use crate::perf_model::PerfModel;
use crate::workload::WorkloadProfile;

/// Thread count and affinity for one device — the per-device half of a *system
/// configuration* in the paper's terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecutionConfig {
    /// Number of software threads to run.
    pub threads: u32,
    /// Thread-affinity policy.
    pub affinity: Affinity,
}

impl ExecutionConfig {
    /// Convenience constructor.
    pub fn new(threads: u32, affinity: Affinity) -> Self {
        ExecutionConfig { threads, affinity }
    }
}

/// How the workload's bytes are split between the host and the accelerators.
///
/// `fractions[0]` is the host share, `fractions[1..]` the accelerator shares; they must
/// be in `[0, 1]` and sum to 1 (within a small tolerance).
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    fractions: Vec<f64>,
}

impl Partition {
    /// Tolerance when checking that fractions sum to one.
    const SUM_TOLERANCE: f64 = 1e-6;

    /// Build a partition from explicit fractions (`[host, device1, device2, ...]`).
    pub fn new(fractions: Vec<f64>) -> Result<Self, PlatformError> {
        if fractions.is_empty() {
            return Err(PlatformError::InvalidPartition {
                reason: "at least the host fraction is required".to_string(),
            });
        }
        if fractions
            .iter()
            .any(|f| !(0.0..=1.0).contains(f) || f.is_nan())
        {
            return Err(PlatformError::InvalidPartition {
                reason: format!("all fractions must lie in [0,1], got {fractions:?}"),
            });
        }
        let sum: f64 = fractions.iter().sum();
        if (sum - 1.0).abs() > Self::SUM_TOLERANCE {
            return Err(PlatformError::InvalidPartition {
                reason: format!("fractions must sum to 1.0, got {sum}"),
            });
        }
        Ok(Partition { fractions })
    }

    /// Two-way split between the host and a single accelerator.
    ///
    /// `host_fraction` must lie in `[0, 1]`; NaN and out-of-range values are rejected
    /// with the same error policy as [`Partition::new`].  (Earlier versions silently
    /// clamped, which let `f64::NAN` slip through `f64::clamp` and poison every
    /// downstream timing.)
    pub fn two_way(host_fraction: f64) -> Result<Self, PlatformError> {
        if !(0.0..=1.0).contains(&host_fraction) || host_fraction.is_nan() {
            return Err(PlatformError::InvalidPartition {
                reason: format!("host fraction must lie in [0,1], got {host_fraction}"),
            });
        }
        Ok(Partition {
            fractions: vec![host_fraction, 1.0 - host_fraction],
        })
    }

    /// Split expressed as a host percentage (the paper's "workload fraction" parameter,
    /// 0..=100).  Percentages above 100 are rejected, like [`Partition::new`] rejects
    /// fractions above 1.
    pub fn from_host_percent(host_percent: u32) -> Result<Self, PlatformError> {
        if host_percent > 100 {
            return Err(PlatformError::InvalidPartition {
                reason: format!("host percentage must lie in 0..=100, got {host_percent}"),
            });
        }
        Self::two_way(f64::from(host_percent) / 100.0)
    }

    /// Everything on the host.
    pub fn host_only(accelerators: usize) -> Self {
        let mut fractions = vec![0.0; accelerators + 1];
        fractions[0] = 1.0;
        Partition { fractions }
    }

    /// Everything on the (first) accelerator.
    pub fn device_only(accelerators: usize) -> Self {
        assert!(
            accelerators >= 1,
            "device_only requires at least one accelerator"
        );
        let mut fractions = vec![0.0; accelerators + 1];
        fractions[1] = 1.0;
        Partition { fractions }
    }

    /// The host's share (0..=1).
    pub fn host_fraction(&self) -> f64 {
        self.fractions[0]
    }

    /// The accelerators' shares.
    pub fn device_fractions(&self) -> &[f64] {
        &self.fractions[1..]
    }

    /// Number of accelerator entries in this partition.
    pub fn accelerator_count(&self) -> usize {
        self.fractions.len() - 1
    }
}

/// One entry of a batched [`HeterogeneousPlatform::execute_many`] call: a partition
/// plus the host and per-accelerator execution configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionRequest {
    /// How the workload's bytes are split between host and accelerators.
    pub partition: Partition,
    /// Host thread count and affinity.
    pub host: ExecutionConfig,
    /// Per-accelerator thread counts and affinities (one entry per accelerator).
    pub devices: Vec<ExecutionConfig>,
}

impl ExecutionRequest {
    /// Convenience constructor for the common single-accelerator case.  Propagates
    /// [`Partition::two_way`]'s validation (NaN / out-of-range host fractions).
    pub fn two_way(
        host_fraction: f64,
        host: ExecutionConfig,
        device: ExecutionConfig,
    ) -> Result<Self, PlatformError> {
        Ok(ExecutionRequest {
            partition: Partition::two_way(host_fraction)?,
            host,
            devices: vec![device],
        })
    }
}

/// Result of one simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Time spent by the host on its share (0 if the host received no work).
    pub t_host: f64,
    /// Wall-clock time of the slowest accelerator including offload overheads
    /// (0 if nothing was offloaded).
    pub t_device: f64,
    /// Total application time: host and device work overlap, so this is the maximum of
    /// the two (Eq. 2 of the paper).
    pub t_total: f64,
    /// Detailed breakdown.
    pub stats: ExecutionStats,
}

/// A simulated heterogeneous node.
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneousPlatform {
    /// The host CPU(s).
    pub host: DeviceSpec,
    /// The accelerators (possibly more than one).
    pub accelerators: Vec<DeviceSpec>,
    /// Host ↔ accelerator interconnect model.
    pub offload: OffloadModel,
    /// Measurement noise model.
    pub noise: NoiseModel,
    /// Analytical per-device performance model.
    pub perf: PerfModel,
}

impl HeterogeneousPlatform {
    /// The paper's evaluation machine "Emil": dual Xeon E5-2695v2 host plus one Xeon Phi
    /// 7120P, PCIe gen-2 interconnect, ~3 % measurement noise.
    pub fn emil() -> Self {
        Self::emil_with_seed(0x45_6d_69_6c) // "Emil"
    }

    /// Same as [`HeterogeneousPlatform::emil`] but with a caller-chosen noise seed, so
    /// experiments can simulate independent measurement campaigns.
    pub fn emil_with_seed(seed: u64) -> Self {
        HeterogeneousPlatform {
            host: DeviceSpec::xeon_e5_2695v2_dual(),
            accelerators: vec![DeviceSpec::xeon_phi_7120p()],
            offload: OffloadModel::pcie_gen2_x16(),
            noise: NoiseModel::paper_default(seed),
            perf: PerfModel::default(),
        }
    }

    /// The "Emil" machine extended with a second, GPU-like accelerator — the paper's
    /// architecture allows one to eight accelerators per node; this is the smallest
    /// heterogeneous-accelerator instance of it.
    pub fn emil_with_gpu() -> Self {
        Self::emil_with_gpu_seed(0x45_6d_69_6c)
    }

    /// Same as [`HeterogeneousPlatform::emil_with_gpu`] with a caller-chosen noise seed.
    pub fn emil_with_gpu_seed(seed: u64) -> Self {
        HeterogeneousPlatform {
            host: DeviceSpec::xeon_e5_2695v2_dual(),
            accelerators: vec![DeviceSpec::xeon_phi_7120p(), DeviceSpec::generic_gpu()],
            offload: OffloadModel::pcie_gen2_x16(),
            noise: NoiseModel::paper_default(seed),
            perf: PerfModel::default(),
        }
    }

    /// A noiseless copy of this platform (useful for analytical tests and for isolating
    /// model effects in ablation benches).
    pub fn without_noise(mut self) -> Self {
        self.noise = NoiseModel::disabled();
        self
    }

    /// Build a custom platform.
    pub fn new(
        host: DeviceSpec,
        accelerators: Vec<DeviceSpec>,
        offload: OffloadModel,
        noise: NoiseModel,
        perf: PerfModel,
    ) -> Self {
        HeterogeneousPlatform {
            host,
            accelerators,
            offload,
            noise,
            perf,
        }
    }

    /// Number of accelerators attached to the host.
    pub fn accelerator_count(&self) -> usize {
        self.accelerators.len()
    }

    /// Simulate one execution of `workload` split according to `partition`, with the
    /// host using `host_cfg` and accelerator `i` using `device_cfgs[i]`.
    ///
    /// Host and device shares run concurrently (offload model of the paper), so the
    /// total time is the maximum of the per-device times; the device time includes the
    /// offload launch overhead and PCIe transfers, with the input transfer overlapping
    /// device compute (double-buffered streaming).
    pub fn execute(
        &self,
        workload: &WorkloadProfile,
        partition: &Partition,
        host_cfg: &ExecutionConfig,
        device_cfgs: &[ExecutionConfig],
    ) -> Result<Measurement, PlatformError> {
        self.validate(workload, partition, host_cfg, device_cfgs)?;

        let mut stats = ExecutionStats::default();

        // --- host side -----------------------------------------------------------
        let host_share = workload.fraction(partition.host_fraction());
        let t_host = if host_share.is_empty() {
            0.0
        } else {
            let breakdown = self.perf.compute_time(
                &self.host,
                host_cfg.affinity,
                host_cfg.threads,
                &host_share,
            );
            stats.host_bytes = host_share.bytes;
            stats.host_threads = host_cfg.threads;
            stats.host_rate = breakdown.aggregate_rate;
            stats.host_compute_seconds = breakdown.parallel + breakdown.serial;
            let noise = self.noise.factor(&[
                0x01,
                u64::from(host_cfg.threads),
                host_cfg.affinity as u64,
                host_share.bytes,
            ]);
            breakdown.total() * noise
        };

        // --- accelerator side ----------------------------------------------------
        let mut t_device_max: f64 = 0.0;
        for (idx, accel) in self.accelerators.iter().enumerate() {
            let fraction = partition
                .device_fractions()
                .get(idx)
                .copied()
                .unwrap_or(0.0);
            let share = workload.fraction(fraction);
            if share.is_empty() {
                continue;
            }
            let cfg = device_cfgs[idx];
            let breakdown = self
                .perf
                .compute_time(accel, cfg.affinity, cfg.threads, &share);
            let result_bytes =
                (share.bytes as f64 * share.result_bytes_per_input_byte).ceil() as u64;
            let transfer_in = self.offload.transfer_to_device(share.bytes);
            let transfer_back = self.offload.transfer_to_host(result_bytes);

            // The input stream is double-buffered: chunks are scanned while the next
            // chunk is in flight, so transfer and compute overlap.
            let overlapped = breakdown.parallel.max(transfer_in);
            let t_device = self.offload.launch_overhead_s
                + breakdown.setup
                + breakdown.serial
                + breakdown.spawn
                + overlapped
                + transfer_back;

            let noise = self.noise.factor(&[
                0x10 + idx as u64,
                u64::from(cfg.threads),
                cfg.affinity as u64,
                share.bytes,
            ]);
            let t_device = t_device * noise;

            stats.device_bytes += share.bytes;
            stats.device_threads += cfg.threads;
            stats.device_rate += breakdown.aggregate_rate;
            stats.transfer_seconds += transfer_in + transfer_back;
            stats.launch_seconds += self.offload.launch_overhead_s;
            stats.device_compute_seconds = stats
                .device_compute_seconds
                .max(breakdown.parallel + breakdown.serial);

            t_device_max = t_device_max.max(t_device);
        }

        Ok(Measurement {
            t_host,
            t_device: t_device_max,
            t_total: t_host.max(t_device_max),
            stats,
        })
    }

    /// Simulate many executions of `workload` in one batch, one [`Measurement`] per
    /// [`ExecutionRequest`], in request order.
    ///
    /// The requests are scored in parallel on rayon workers.  Because the simulator is
    /// stateless and its noise model is a pure hash of the measurement context, the
    /// results are bit-identical to calling [`HeterogeneousPlatform::execute`] once
    /// per request, regardless of thread count.
    pub fn execute_many(
        &self,
        workload: &WorkloadProfile,
        requests: &[ExecutionRequest],
    ) -> Vec<Result<Measurement, PlatformError>> {
        requests
            .par_iter()
            .map(|request| {
                self.execute(
                    workload,
                    &request.partition,
                    &request.host,
                    &request.devices,
                )
            })
            .collect()
    }

    /// Run the whole workload on the host only.
    pub fn execute_host_only(
        &self,
        workload: &WorkloadProfile,
        host_cfg: &ExecutionConfig,
    ) -> Result<Measurement, PlatformError> {
        let dummy_cfgs: Vec<ExecutionConfig> = self
            .accelerators
            .iter()
            .map(|_| ExecutionConfig::new(1, Affinity::Balanced))
            .collect();
        self.execute(
            workload,
            &Partition::host_only(self.accelerators.len()),
            host_cfg,
            &dummy_cfgs,
        )
    }

    /// Run the whole workload on the first accelerator only.
    pub fn execute_device_only(
        &self,
        workload: &WorkloadProfile,
        device_cfg: &ExecutionConfig,
    ) -> Result<Measurement, PlatformError> {
        self.execute_device_only_on(0, workload, device_cfg)
    }

    /// Run the whole workload on accelerator `index` only (the per-device entry point
    /// the multi-accelerator training campaign uses to characterise each device).
    pub fn execute_device_only_on(
        &self,
        index: usize,
        workload: &WorkloadProfile,
        device_cfg: &ExecutionConfig,
    ) -> Result<Measurement, PlatformError> {
        assert!(
            index < self.accelerators.len(),
            "accelerator index {index} out of range (platform has {})",
            self.accelerators.len()
        );
        let mut cfgs: Vec<ExecutionConfig> = self
            .accelerators
            .iter()
            .map(|_| ExecutionConfig::new(1, Affinity::Balanced))
            .collect();
        cfgs[index] = *device_cfg;
        let mut fractions = vec![0.0; self.accelerators.len() + 1];
        fractions[index + 1] = 1.0;
        self.execute(
            workload,
            &Partition { fractions },
            &ExecutionConfig::new(1, Affinity::Scatter),
            &cfgs,
        )
    }

    fn validate(
        &self,
        workload: &WorkloadProfile,
        partition: &Partition,
        host_cfg: &ExecutionConfig,
        device_cfgs: &[ExecutionConfig],
    ) -> Result<(), PlatformError> {
        if workload.bytes == 0 {
            return Err(PlatformError::EmptyWorkload);
        }
        if partition.accelerator_count() != self.accelerators.len() {
            return Err(PlatformError::InvalidPartition {
                reason: format!(
                    "partition describes {} accelerator(s) but the platform has {}",
                    partition.accelerator_count(),
                    self.accelerators.len()
                ),
            });
        }
        if device_cfgs.len() != self.accelerators.len() {
            return Err(PlatformError::ConfigCountMismatch {
                accelerators: self.accelerators.len(),
                configs: device_cfgs.len(),
            });
        }
        let sum: f64 = partition.host_fraction() + partition.device_fractions().iter().sum::<f64>();
        if (sum - 1.0).abs() > Partition::SUM_TOLERANCE {
            return Err(PlatformError::InvalidPartition {
                reason: format!("fractions must sum to 1.0, got {sum}"),
            });
        }

        if partition.host_fraction() > 0.0 {
            self.validate_device(&self.host, host_cfg)?;
        }
        for (idx, accel) in self.accelerators.iter().enumerate() {
            let fraction = partition.device_fractions()[idx];
            if fraction > 0.0 {
                self.validate_device(accel, &device_cfgs[idx])?;
            }
        }
        Ok(())
    }

    fn validate_device(
        &self,
        spec: &DeviceSpec,
        cfg: &ExecutionConfig,
    ) -> Result<(), PlatformError> {
        if cfg.threads == 0 {
            return Err(PlatformError::ZeroThreads {
                device: spec.name.clone(),
            });
        }
        if cfg.threads > spec.max_threads() {
            return Err(PlatformError::TooManyThreads {
                device: spec.name.clone(),
                requested: cfg.threads,
                maximum: spec.max_threads(),
            });
        }
        let valid = match spec.kind {
            DeviceKind::HostCpu => cfg.affinity.valid_for_host(),
            DeviceKind::ManyCoreAccelerator => cfg.affinity.valid_for_device(),
        };
        if !valid {
            return Err(PlatformError::UnsupportedAffinity {
                device: spec.name.clone(),
                affinity: cfg.affinity,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn human() -> WorkloadProfile {
        WorkloadProfile::dna_scan("human", 3_170_000_000)
    }

    fn small() -> WorkloadProfile {
        WorkloadProfile::dna_scan("small", 190_000_000)
    }

    fn host48() -> ExecutionConfig {
        ExecutionConfig::new(48, Affinity::Scatter)
    }

    fn phi240() -> ExecutionConfig {
        ExecutionConfig::new(240, Affinity::Balanced)
    }

    #[test]
    fn partition_constructors() {
        let p = Partition::two_way(0.6).unwrap();
        assert!((p.host_fraction() - 0.6).abs() < 1e-12);
        assert!((p.device_fractions()[0] - 0.4).abs() < 1e-12);

        let p = Partition::from_host_percent(70).unwrap();
        assert!((p.host_fraction() - 0.7).abs() < 1e-12);

        assert_eq!(Partition::host_only(1).device_fractions(), &[0.0]);
        assert_eq!(Partition::device_only(1).host_fraction(), 0.0);

        assert!(Partition::new(vec![0.5, 0.6]).is_err());
        assert!(Partition::new(vec![-0.1, 1.1]).is_err());
        assert!(Partition::new(vec![]).is_err());
        assert!(Partition::new(vec![0.25, 0.25, 0.5]).is_ok());
    }

    #[test]
    fn two_way_rejects_nan_and_out_of_range_fractions() {
        // Regression: `f64::clamp` propagates NaN, so `two_way(f64::NAN)` used to
        // return a NaN partition that bypassed `Partition::new`'s validation and
        // silently poisoned every downstream timing.
        assert!(Partition::two_way(f64::NAN).is_err());
        assert!(Partition::new(vec![f64::NAN, 1.0]).is_err());
        // and the silent-clamp policy is gone: out-of-range inputs error like `new`
        assert!(Partition::two_way(-0.1).is_err());
        assert!(Partition::two_way(1.5).is_err());
        assert!(Partition::two_way(f64::INFINITY).is_err());
        assert!(Partition::from_host_percent(101).is_err());
        assert!(Partition::from_host_percent(100).is_ok());
        assert!(Partition::two_way(0.0).is_ok());
        assert!(Partition::two_way(1.0).is_ok());
        assert!(ExecutionRequest::two_way(f64::NAN, host48(), phi240()).is_err());
    }

    #[test]
    fn execute_device_only_on_targets_the_requested_accelerator() {
        let platform = HeterogeneousPlatform::emil_with_gpu().without_noise();
        assert_eq!(platform.accelerator_count(), 2);
        let phi = platform
            .execute_device_only_on(0, &human(), &phi240())
            .unwrap();
        let gpu = platform
            .execute_device_only_on(1, &human(), &ExecutionConfig::new(448, Affinity::Balanced))
            .unwrap();
        assert!(phi.t_device > 0.0 && gpu.t_device > 0.0);
        assert_eq!(phi.t_host, 0.0);
        assert_eq!(gpu.t_host, 0.0);
        // the two accelerators are genuinely different devices
        assert_ne!(phi.t_device, gpu.t_device);
        // index 0 matches the single-accelerator entry point on the emil platform
        let emil = HeterogeneousPlatform::emil().without_noise();
        assert_eq!(
            emil.execute_device_only(&human(), &phi240())
                .unwrap()
                .t_device,
            emil.execute_device_only_on(0, &human(), &phi240())
                .unwrap()
                .t_device
        );
    }

    #[test]
    fn total_is_max_of_host_and_device() {
        let platform = HeterogeneousPlatform::emil();
        let m = platform
            .execute(
                &human(),
                &Partition::two_way(0.6).unwrap(),
                &host48(),
                &[phi240()],
            )
            .unwrap();
        assert!(m.t_host > 0.0 && m.t_device > 0.0);
        assert!((m.t_total - m.t_host.max(m.t_device)).abs() < 1e-12);
    }

    #[test]
    fn host_only_and_device_only_baselines_match_paper_anchors() {
        let platform = HeterogeneousPlatform::emil().without_noise();
        let host_only = platform.execute_host_only(&human(), &host48()).unwrap();
        let device_only = platform.execute_device_only(&human(), &phi240()).unwrap();
        // Paper anchors: host-only ≈ 0.74 s, device-only ≈ 0.9-1.0 s for the human genome.
        assert!(
            (0.55..=0.95).contains(&host_only.t_total),
            "host-only {}",
            host_only.t_total
        );
        assert!(
            (0.8..=1.4).contains(&device_only.t_total),
            "device-only {}",
            device_only.t_total
        );
        assert!(device_only.t_total > host_only.t_total);
    }

    #[test]
    fn a_mixed_split_beats_both_baselines_for_large_inputs() {
        let platform = HeterogeneousPlatform::emil().without_noise();
        let host_only = platform
            .execute_host_only(&human(), &host48())
            .unwrap()
            .t_total;
        let device_only = platform
            .execute_device_only(&human(), &phi240())
            .unwrap()
            .t_total;
        let best_mixed = (1..100)
            .map(|pct| {
                platform
                    .execute(
                        &human(),
                        &Partition::from_host_percent(pct).unwrap(),
                        &host48(),
                        &[phi240()],
                    )
                    .unwrap()
                    .t_total
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_mixed < host_only,
            "mixed {best_mixed} vs host {host_only}"
        );
        assert!(
            best_mixed < device_only,
            "mixed {best_mixed} vs device {device_only}"
        );
        // Paper: ≈1.4-2.0× over host-only, ≈1.8-2.4× over device-only.
        assert!(host_only / best_mixed > 1.2);
        assert!(device_only / best_mixed > 1.5);
    }

    #[test]
    fn cpu_only_wins_for_small_inputs() {
        // Fig. 2a: with a 190 MB input and 48 host threads, any offloading loses to
        // CPU-only because of the offload overhead.
        let platform = HeterogeneousPlatform::emil().without_noise();
        let host_only = platform
            .execute_host_only(&small(), &host48())
            .unwrap()
            .t_total;
        for pct in (10..=90).step_by(10) {
            let mixed = platform
                .execute(
                    &small(),
                    &Partition::from_host_percent(pct).unwrap(),
                    &host48(),
                    &[phi240()],
                )
                .unwrap()
                .t_total;
            assert!(
                mixed >= host_only,
                "offloading {}% should not pay off for a small input ({mixed} vs {host_only})",
                100 - pct
            );
        }
    }

    #[test]
    fn device_favoured_split_wins_when_host_threads_are_few() {
        // Fig. 2c: with only 4 host threads the optimum assigns ~70 % to the device.
        let platform = HeterogeneousPlatform::emil().without_noise();
        let host4 = ExecutionConfig::new(4, Affinity::Scatter);
        let large = WorkloadProfile::dna_scan("large", 3_250_000_000);
        let mut best_pct = 0;
        let mut best = f64::INFINITY;
        for pct in 0..=100 {
            let t = platform
                .execute(
                    &large,
                    &Partition::from_host_percent(pct).unwrap(),
                    &host4,
                    &[phi240()],
                )
                .unwrap()
                .t_total;
            if t < best {
                best = t;
                best_pct = pct;
            }
        }
        assert!(
            best_pct <= 40,
            "optimum host share should be small with 4 host threads, got {best_pct}%"
        );
        let host_only = platform.execute_host_only(&large, &host4).unwrap().t_total;
        assert!(best < host_only);
    }

    #[test]
    fn noise_is_reproducible_and_small() {
        let platform = HeterogeneousPlatform::emil();
        let a = platform
            .execute(
                &human(),
                &Partition::two_way(0.6).unwrap(),
                &host48(),
                &[phi240()],
            )
            .unwrap();
        let b = platform
            .execute(
                &human(),
                &Partition::two_way(0.6).unwrap(),
                &host48(),
                &[phi240()],
            )
            .unwrap();
        assert_eq!(
            a.t_total, b.t_total,
            "same configuration must reproduce exactly"
        );

        let noiseless = HeterogeneousPlatform::emil().without_noise();
        let c = noiseless
            .execute(
                &human(),
                &Partition::two_way(0.6).unwrap(),
                &host48(),
                &[phi240()],
            )
            .unwrap();
        let rel = (a.t_total - c.t_total).abs() / c.t_total;
        assert!(
            rel < 0.15,
            "noise should stay within a few percent, got {rel}"
        );
    }

    #[test]
    fn validation_errors() {
        let platform = HeterogeneousPlatform::emil();
        let w = human();

        // too many threads on the host
        let err = platform
            .execute(
                &w,
                &Partition::two_way(0.5).unwrap(),
                &ExecutionConfig::new(64, Affinity::Scatter),
                &[phi240()],
            )
            .unwrap_err();
        assert!(matches!(err, PlatformError::TooManyThreads { .. }));

        // zero threads with work assigned
        let err = platform
            .execute(
                &w,
                &Partition::two_way(0.5).unwrap(),
                &ExecutionConfig::new(0, Affinity::Scatter),
                &[phi240()],
            )
            .unwrap_err();
        assert!(matches!(err, PlatformError::ZeroThreads { .. }));

        // balanced is not a host affinity
        let err = platform
            .execute(
                &w,
                &Partition::two_way(0.5).unwrap(),
                &ExecutionConfig::new(24, Affinity::Balanced),
                &[phi240()],
            )
            .unwrap_err();
        assert!(matches!(err, PlatformError::UnsupportedAffinity { .. }));

        // `none` is not a device affinity
        let err = platform
            .execute(
                &w,
                &Partition::two_way(0.5).unwrap(),
                &host48(),
                &[ExecutionConfig::new(60, Affinity::None)],
            )
            .unwrap_err();
        assert!(matches!(err, PlatformError::UnsupportedAffinity { .. }));

        // missing device configuration
        let err = platform
            .execute(&w, &Partition::two_way(0.5).unwrap(), &host48(), &[])
            .unwrap_err();
        assert!(matches!(err, PlatformError::ConfigCountMismatch { .. }));

        // empty workload
        let err = platform
            .execute(
                &w.fraction(0.0),
                &Partition::two_way(0.5).unwrap(),
                &host48(),
                &[phi240()],
            )
            .unwrap_err();
        assert!(matches!(err, PlatformError::EmptyWorkload));

        // wrong partition arity
        let err = platform
            .execute(
                &w,
                &Partition::new(vec![0.5, 0.25, 0.25]).unwrap(),
                &host48(),
                &[phi240()],
            )
            .unwrap_err();
        assert!(matches!(err, PlatformError::InvalidPartition { .. }));
    }

    #[test]
    fn execute_many_matches_one_at_a_time_execution() {
        let platform = HeterogeneousPlatform::emil();
        let workload = human();
        let requests: Vec<ExecutionRequest> = (0..=10u32)
            .map(|step| ExecutionRequest::two_way(step as f64 / 10.0, host48(), phi240()).unwrap())
            .collect();
        let batched = platform.execute_many(&workload, &requests);
        assert_eq!(batched.len(), requests.len());
        for (request, result) in requests.iter().zip(batched) {
            let single = platform
                .execute(
                    &workload,
                    &request.partition,
                    &request.host,
                    &request.devices,
                )
                .unwrap();
            let batched = result.expect("all requests are valid");
            assert_eq!(
                batched.t_total, single.t_total,
                "batched execution must be bit-identical"
            );
            assert_eq!(batched.t_host, single.t_host);
            assert_eq!(batched.t_device, single.t_device);
        }
    }

    #[test]
    fn execute_many_reports_per_request_errors() {
        let platform = HeterogeneousPlatform::emil();
        let workload = human();
        let requests = vec![
            ExecutionRequest::two_way(0.5, host48(), phi240()).unwrap(),
            // 64 host threads exceed the dual-socket maximum
            ExecutionRequest::two_way(0.5, ExecutionConfig::new(64, Affinity::Scatter), phi240())
                .unwrap(),
        ];
        let results = platform.execute_many(&workload, &requests);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(PlatformError::TooManyThreads { .. })
        ));
    }

    #[test]
    fn invalid_config_on_idle_device_is_tolerated() {
        // If a device receives no work, its configuration is irrelevant.
        let platform = HeterogeneousPlatform::emil();
        let m = platform
            .execute(
                &human(),
                &Partition::host_only(1),
                &host48(),
                &[ExecutionConfig::new(0, Affinity::None)],
            )
            .unwrap();
        assert_eq!(m.t_device, 0.0);
        assert!(m.t_host > 0.0);
    }

    #[test]
    fn stats_reflect_the_partition() {
        let platform = HeterogeneousPlatform::emil();
        let m = platform
            .execute(
                &human(),
                &Partition::two_way(0.75).unwrap(),
                &host48(),
                &[phi240()],
            )
            .unwrap();
        assert!((m.stats.host_share() - 0.75).abs() < 0.01);
        assert!(m.stats.transfer_seconds > 0.0);
        assert!(m.stats.launch_seconds > 0.0);
    }

    #[test]
    fn multi_accelerator_platform_works() {
        let platform = HeterogeneousPlatform::new(
            DeviceSpec::xeon_e5_2695v2_dual(),
            vec![DeviceSpec::xeon_phi_7120p(), DeviceSpec::generic_gpu()],
            OffloadModel::pcie_gen2_x16(),
            NoiseModel::disabled(),
            PerfModel::default(),
        );
        let m = platform
            .execute(
                &human(),
                &Partition::new(vec![0.5, 0.3, 0.2]).unwrap(),
                &host48(),
                &[phi240(), ExecutionConfig::new(448, Affinity::Balanced)],
            )
            .unwrap();
        assert!(m.t_total > 0.0);
        assert!(m.stats.device_bytes > 0);
        assert_eq!(m.stats.device_threads, 240 + 448);
    }
}
