//! Socket / core / hardware-thread topology of a device.

/// Compact description of a device topology used for thread placement.
///
/// Cores are indexed `0..usable_cores()` in socket-major order: core `c` belongs to
/// socket `c / cores_per_socket`.  Reserved cores (e.g. the Xeon Phi core running the
/// µOS) are removed from the end of the core list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    sockets: u32,
    cores_per_socket: u32,
    threads_per_core: u32,
    reserved_cores: u32,
}

impl Topology {
    /// Create a topology.  `reserved_cores` must be smaller than the total core count.
    pub fn new(
        sockets: u32,
        cores_per_socket: u32,
        threads_per_core: u32,
        reserved_cores: u32,
    ) -> Self {
        assert!(sockets > 0, "a device has at least one socket");
        assert!(cores_per_socket > 0, "a socket has at least one core");
        assert!(
            threads_per_core > 0,
            "a core has at least one hardware thread"
        );
        assert!(
            reserved_cores < sockets * cores_per_socket,
            "cannot reserve every core"
        );
        Topology {
            sockets,
            cores_per_socket,
            threads_per_core,
            reserved_cores,
        }
    }

    /// Number of sockets.
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// Number of physical cores per socket.
    pub fn cores_per_socket(&self) -> u32 {
        self.cores_per_socket
    }

    /// Hardware threads per core.
    pub fn threads_per_core(&self) -> u32 {
        self.threads_per_core
    }

    /// Cores removed from the application's view (system software).
    pub fn reserved_cores(&self) -> u32 {
        self.reserved_cores
    }

    /// Cores usable by the application.
    pub fn usable_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket - self.reserved_cores
    }

    /// Maximum number of application threads (usable cores × SMT width).
    pub fn max_threads(&self) -> u32 {
        self.usable_cores() * self.threads_per_core
    }

    /// Socket that owns core `core` (cores are numbered socket-major).
    pub fn socket_of_core(&self, core: u32) -> u32 {
        debug_assert!(core < self.usable_cores());
        core / self.cores_per_socket
    }

    /// Iterator over usable core indices in *scatter* order: round-robin across sockets
    /// so that consecutive entries land on different sockets whenever possible.
    pub fn cores_scatter_order(&self) -> Vec<u32> {
        let usable = self.usable_cores();
        let mut order = Vec::with_capacity(usable as usize);
        let per_socket = self.cores_per_socket;
        for offset in 0..per_socket {
            for socket in 0..self.sockets {
                let core = socket * per_socket + offset;
                if core < usable {
                    order.push(core);
                }
            }
        }
        order
    }

    /// Iterator over usable core indices in *compact* order: fill socket 0 first.
    pub fn cores_compact_order(&self) -> Vec<u32> {
        (0..self.usable_cores()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> Topology {
        Topology::new(2, 12, 2, 0)
    }

    fn phi() -> Topology {
        Topology::new(1, 61, 4, 1)
    }

    #[test]
    fn counts() {
        assert_eq!(host().usable_cores(), 24);
        assert_eq!(host().max_threads(), 48);
        assert_eq!(phi().usable_cores(), 60);
        assert_eq!(phi().max_threads(), 240);
    }

    #[test]
    fn socket_assignment_is_socket_major() {
        let t = host();
        assert_eq!(t.socket_of_core(0), 0);
        assert_eq!(t.socket_of_core(11), 0);
        assert_eq!(t.socket_of_core(12), 1);
        assert_eq!(t.socket_of_core(23), 1);
    }

    #[test]
    fn scatter_order_alternates_sockets() {
        let t = host();
        let order = t.cores_scatter_order();
        assert_eq!(order.len(), 24);
        // first two entries are on different sockets
        assert_ne!(t.socket_of_core(order[0]), t.socket_of_core(order[1]));
        // every core appears exactly once
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn compact_order_fills_first_socket_first() {
        let t = host();
        let order = t.cores_compact_order();
        assert!(order[..12].iter().all(|&c| t.socket_of_core(c) == 0));
        assert!(order[12..].iter().all(|&c| t.socket_of_core(c) == 1));
    }

    #[test]
    fn scatter_order_skips_reserved_cores() {
        let t = phi();
        let order = t.cores_scatter_order();
        assert_eq!(order.len(), 60);
        assert!(order.iter().all(|&c| c < 60));
    }

    #[test]
    #[should_panic(expected = "cannot reserve every core")]
    fn reserving_all_cores_panics() {
        let _ = Topology::new(1, 2, 4, 2);
    }
}
