//! Analytical performance model of a single device.
//!
//! The model maps `(device spec, thread count, affinity, workload share)` to an
//! execution-time breakdown.  It is intentionally simple — a handful of first-order
//! effects with calibrated coefficients — because the optimization problem studied in
//! the paper only needs the *shape* of the time surface:
//!
//! * throughput grows with the number of threads but sub-linearly (SMT gains saturate,
//!   active cores contend for the shared cache / memory system),
//! * affinity decides how many cores and sockets a given thread count actually covers,
//! * a small serial fraction and fixed setup costs put a floor under the time,
//! * load imbalance grows mildly with the thread count,
//! * wide SIMD only helps the vectorizable part of the workload,
//! * memory bandwidth caps the achievable aggregate rate.

use crate::affinity::Affinity;
use crate::device::{DeviceKind, DeviceSpec};
use crate::workload::WorkloadProfile;

/// Vectorizable share of the *reference* workload used to calibrate
/// [`DeviceSpec::scan_rate_per_thread`].
pub const REFERENCE_VECTORIZABLE: f64 = 0.85;

/// Tunable coefficients of the analytical model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModelParams {
    /// Load imbalance at full machine occupancy, as a fraction of the parallel time
    /// (linearly interpolated from 0 at one thread).
    pub imbalance_at_full: f64,
    /// Per-thread spawn/join/teardown overhead in seconds.
    pub spawn_overhead_s: f64,
    /// Fraction of the datasheet memory bandwidth that a real scan can sustain.
    pub bandwidth_utilization: f64,
    /// Relative efficiency of the `none` affinity (OS scheduling) vs. explicit binding.
    pub none_affinity_efficiency: f64,
    /// Relative efficiency of `compact` placement (reduced bandwidth per thread).
    pub compact_affinity_efficiency: f64,
    /// Relative efficiency of `scatter` placement on an accelerator compared to `balanced`.
    pub device_scatter_efficiency: f64,
}

impl Default for PerfModelParams {
    fn default() -> Self {
        PerfModelParams {
            imbalance_at_full: 0.08,
            spawn_overhead_s: 0.00017,
            bandwidth_utilization: 0.80,
            none_affinity_efficiency: 0.96,
            compact_affinity_efficiency: 0.965,
            device_scatter_efficiency: 0.985,
        }
    }
}

/// Execution-time breakdown produced by the model (all values in seconds except
/// `aggregate_rate`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComputeBreakdown {
    /// Fixed setup time (thread pool / offload runtime initialisation, automaton build).
    pub setup: f64,
    /// Serial (non-parallelisable) portion.
    pub serial: f64,
    /// Parallel portion including load imbalance.
    pub parallel: f64,
    /// Thread spawn/join overhead.
    pub spawn: f64,
    /// Effective aggregate processing rate in bytes/second (0 for an empty share).
    pub aggregate_rate: f64,
}

impl ComputeBreakdown {
    /// Total compute-side time (excluding any data transfer).
    pub fn total(&self) -> f64 {
        self.setup + self.serial + self.parallel + self.spawn
    }
}

/// The analytical performance model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerfModel {
    /// Coefficients used by the model.
    pub params: PerfModelParams,
}

impl PerfModel {
    /// Create a model with the given coefficients.
    pub fn new(params: PerfModelParams) -> Self {
        PerfModel { params }
    }

    /// Relative slowdown/speedup of `workload` compared to the reference workload on
    /// `spec`, considering SIMD friendliness and per-byte cost.
    ///
    /// The returned value multiplies the *time per byte*: 1.0 for the reference DNA
    /// scan, larger for more expensive or less vectorizable workloads.
    pub fn workload_cost_scale(&self, spec: &DeviceSpec, workload: &WorkloadProfile) -> f64 {
        let lanes = (spec.simd_width_bits as f64 / 64.0).max(1.0);
        let reference = REFERENCE_VECTORIZABLE / lanes + (1.0 - REFERENCE_VECTORIZABLE);
        let actual = workload.vectorizable / lanes + (1.0 - workload.vectorizable);
        workload.cost_factor * actual / reference
    }

    /// Efficiency multiplier of the chosen affinity policy on the given device kind.
    pub fn affinity_efficiency(&self, kind: DeviceKind, affinity: Affinity) -> f64 {
        match (kind, affinity) {
            (DeviceKind::HostCpu, Affinity::Scatter) => 1.0,
            (DeviceKind::HostCpu, Affinity::None) => self.params.none_affinity_efficiency,
            (DeviceKind::HostCpu, Affinity::Compact) => self.params.compact_affinity_efficiency,
            // balanced is not offered by the host runtime; treat it like scatter
            (DeviceKind::HostCpu, Affinity::Balanced) => 1.0,
            (DeviceKind::ManyCoreAccelerator, Affinity::Balanced) => 1.0,
            (DeviceKind::ManyCoreAccelerator, Affinity::Scatter) => {
                self.params.device_scatter_efficiency
            }
            (DeviceKind::ManyCoreAccelerator, Affinity::Compact) => {
                self.params.compact_affinity_efficiency
            }
            (DeviceKind::ManyCoreAccelerator, Affinity::None) => {
                self.params.none_affinity_efficiency
            }
        }
    }

    /// Effective aggregate scan rate (bytes/s of the *reference* workload) of `spec`
    /// when `threads` threads are placed according to `affinity`.
    pub fn aggregate_rate(&self, spec: &DeviceSpec, affinity: Affinity, threads: u32) -> f64 {
        if threads == 0 {
            return 0.0;
        }
        let topology = spec.topology();
        let placement = affinity.place(&topology, threads);
        let mut rate = 0.0;
        for socket in 0..topology.sockets() {
            let active = placement.active_cores_on_socket(socket);
            if active == 0 {
                continue;
            }
            // shared-resource contention grows with the number of active cores per socket
            let contention = 1.0 / (1.0 + spec.core_contention * (active as f64 - 1.0));
            let mut socket_rate = 0.0;
            for core in 0..topology.usable_cores() {
                if topology.socket_of_core(core) != socket {
                    continue;
                }
                let k = placement.threads_on_core(core);
                if k > 0 {
                    socket_rate += spec.scan_rate_per_thread * spec.smt_factor(k);
                }
            }
            rate += socket_rate * contention;
        }
        let rate = rate * self.affinity_efficiency(spec.kind, affinity);
        // The scan cannot stream faster than the memory system allows.
        rate.min(spec.total_bandwidth_bytes() * self.params.bandwidth_utilization)
    }

    /// Compute-side execution time of processing `workload` (a share that may be the
    /// whole input or a fraction of it) on `spec` with the given configuration.
    ///
    /// Transfers and offload launch costs are *not* included; see
    /// [`crate::platform::HeterogeneousPlatform`].
    pub fn compute_time(
        &self,
        spec: &DeviceSpec,
        affinity: Affinity,
        threads: u32,
        workload: &WorkloadProfile,
    ) -> ComputeBreakdown {
        if workload.is_empty() || threads == 0 {
            return ComputeBreakdown::default();
        }
        let cost_scale = self.workload_cost_scale(spec, workload);
        let aggregate = self.aggregate_rate(spec, affinity, threads) / cost_scale;

        let setup = match spec.kind {
            DeviceKind::HostCpu => workload.host_setup_seconds,
            DeviceKind::ManyCoreAccelerator => workload.device_setup_seconds,
        };

        // The serial portion runs on a single fully-occupied core.
        let serial_rate =
            spec.scan_rate_per_thread * spec.smt_factor(spec.threads_per_core) / cost_scale;
        let serial = workload.serial_fraction * workload.bytes as f64 / serial_rate;

        let effective_threads = threads.min(spec.max_threads());
        let imbalance = 1.0
            + self.params.imbalance_at_full * (effective_threads.saturating_sub(1)) as f64
                / spec.max_threads().max(1) as f64;
        let parallel =
            (1.0 - workload.serial_fraction) * workload.bytes as f64 / aggregate * imbalance;

        let spawn = self.params.spawn_overhead_s * effective_threads as f64;

        ComputeBreakdown {
            setup,
            serial,
            parallel,
            spawn,
            aggregate_rate: aggregate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> DeviceSpec {
        DeviceSpec::xeon_e5_2695v2_dual()
    }

    fn phi() -> DeviceSpec {
        DeviceSpec::xeon_phi_7120p()
    }

    fn human() -> WorkloadProfile {
        WorkloadProfile::dna_scan("human", 3_170_000_000)
    }

    #[test]
    fn zero_threads_or_empty_workload_cost_nothing() {
        let model = PerfModel::default();
        let empty = human().fraction(0.0);
        assert_eq!(
            model
                .compute_time(&host(), Affinity::Scatter, 48, &empty)
                .total(),
            0.0
        );
        assert_eq!(
            model
                .compute_time(&host(), Affinity::Scatter, 0, &human())
                .total(),
            0.0
        );
        assert_eq!(model.aggregate_rate(&host(), Affinity::Scatter, 0), 0.0);
    }

    #[test]
    fn more_threads_never_slower_on_host_scatter() {
        let model = PerfModel::default();
        let mut prev = f64::INFINITY;
        for threads in [2u32, 4, 6, 12, 24, 36, 48] {
            let t = model
                .compute_time(&host(), Affinity::Scatter, threads, &human())
                .total();
            assert!(
                t <= prev * 1.001,
                "time should not increase with threads: {threads} threads -> {t}"
            );
            prev = t;
        }
    }

    #[test]
    fn scaling_is_sublinear() {
        let model = PerfModel::default();
        let t6 = model
            .compute_time(&host(), Affinity::Scatter, 6, &human())
            .total();
        let t48 = model
            .compute_time(&host(), Affinity::Scatter, 48, &human())
            .total();
        let speedup = t6 / t48;
        // 8x more threads yield clearly less than 8x speedup but clearly more than 2x
        assert!(
            speedup > 2.0 && speedup < 8.0,
            "unexpected 6->48 speedup {speedup}"
        );
    }

    #[test]
    fn host_full_machine_time_matches_calibration_anchor() {
        // Paper anchor: the human genome (3.17 GB) on 48 host threads takes roughly
        // 0.7-0.8 s (the host-only baseline of Table VIII).
        let model = PerfModel::default();
        let t = model
            .compute_time(&host(), Affinity::Scatter, 48, &human())
            .total();
        assert!(
            (0.55..=0.95).contains(&t),
            "host 48-thread time {t} outside anchor range"
        );
    }

    #[test]
    fn host_few_threads_time_matches_calibration_anchor() {
        // Paper Fig. 5: ~2.4-2.8 s with 6 scatter threads on a ~3.1 GB sequence.
        let model = PerfModel::default();
        let t = model
            .compute_time(&host(), Affinity::Scatter, 6, &human())
            .total();
        assert!(
            (2.0..=3.3).contains(&t),
            "host 6-thread time {t} outside anchor range"
        );
    }

    #[test]
    fn phi_full_machine_compute_matches_calibration_anchor() {
        // Device compute (without offload transfer) for the full human genome with 240
        // balanced threads is well under a second... but clearly slower than the host.
        let model = PerfModel::default();
        let t = model
            .compute_time(&phi(), Affinity::Balanced, 240, &human())
            .total();
        let t_host = model
            .compute_time(&host(), Affinity::Scatter, 48, &human())
            .total();
        assert!(
            (0.5..=1.2).contains(&t),
            "phi 240-thread compute {t} outside anchor range"
        );
        assert!(t > t_host);
    }

    #[test]
    fn phi_two_threads_is_dramatically_slower() {
        // Paper: device executions span 0.9 - 42 s; the slow end comes from 2-thread runs.
        let model = PerfModel::default();
        let t = model
            .compute_time(&phi(), Affinity::Balanced, 2, &human())
            .total();
        assert!(
            t > 20.0,
            "2-thread Phi run should take tens of seconds, got {t}"
        );
    }

    #[test]
    fn scatter_beats_compact_at_low_thread_counts_on_host() {
        let model = PerfModel::default();
        let scatter = model
            .compute_time(&host(), Affinity::Scatter, 6, &human())
            .total();
        let compact = model
            .compute_time(&host(), Affinity::Compact, 6, &human())
            .total();
        assert!(
            scatter < compact,
            "scatter ({scatter}) should beat compact ({compact}) at 6 threads"
        );
    }

    #[test]
    fn balanced_is_best_on_the_device_at_partial_occupancy() {
        let model = PerfModel::default();
        let balanced = model
            .compute_time(&phi(), Affinity::Balanced, 60, &human())
            .total();
        let compact = model
            .compute_time(&phi(), Affinity::Compact, 60, &human())
            .total();
        let scatter = model
            .compute_time(&phi(), Affinity::Scatter, 60, &human())
            .total();
        assert!(balanced <= scatter);
        assert!(balanced < compact);
    }

    #[test]
    fn none_affinity_is_slightly_slower_than_scatter() {
        let model = PerfModel::default();
        let scatter = model
            .compute_time(&host(), Affinity::Scatter, 24, &human())
            .total();
        let none = model
            .compute_time(&host(), Affinity::None, 24, &human())
            .total();
        assert!(none > scatter);
        assert!(none < scatter * 1.15);
    }

    #[test]
    fn time_scales_roughly_linearly_with_bytes() {
        let model = PerfModel::default();
        let full = human();
        let half = full.fraction(0.5);
        let t_full = model.compute_time(&host(), Affinity::Scatter, 48, &full);
        let t_half = model.compute_time(&host(), Affinity::Scatter, 48, &half);
        // variable part halves, fixed setup does not
        let var_full = t_full.total() - t_full.setup - t_full.spawn;
        let var_half = t_half.total() - t_half.setup - t_half.spawn;
        assert!((var_full / var_half - 2.0).abs() < 0.05);
    }

    #[test]
    fn expensive_workloads_take_proportionally_longer() {
        let model = PerfModel::default();
        let cheap = WorkloadProfile::dna_scan("w", 1 << 30);
        let mut costly = cheap.clone();
        costly.cost_factor = 3.0;
        let t_cheap = model
            .compute_time(&host(), Affinity::Scatter, 48, &cheap)
            .total();
        let t_costly = model
            .compute_time(&host(), Affinity::Scatter, 48, &costly)
            .total();
        assert!(t_costly > 2.0 * t_cheap);
    }

    #[test]
    fn poorly_vectorizable_work_hurts_the_wide_simd_device_more() {
        let model = PerfModel::default();
        let mut scalarish = human();
        scalarish.vectorizable = 0.0;
        let host_pen = model.workload_cost_scale(&host(), &scalarish)
            / model.workload_cost_scale(&host(), &human());
        let phi_pen = model.workload_cost_scale(&phi(), &scalarish)
            / model.workload_cost_scale(&phi(), &human());
        assert!(phi_pen > host_pen);
    }

    #[test]
    fn aggregate_rate_respects_bandwidth_ceiling() {
        let model = PerfModel::default();
        let mut spec = host();
        // pretend the memory system is extremely weak
        spec.mem_bandwidth_gbs = 0.5;
        let rate = model.aggregate_rate(&spec, Affinity::Scatter, 48);
        assert!(rate <= 2.0 * 0.5e9 * model.params.bandwidth_utilization + 1.0);
    }
}
