//! Device specifications for hosts and accelerators.
//!
//! A [`DeviceSpec`] captures the architectural parameters the performance model needs:
//! socket/core/thread topology, frequencies, SIMD width, memory bandwidth and a
//! calibrated per-thread scan rate together with an SMT (simultaneous multithreading)
//! gain curve.  Presets are provided for the two devices of the paper's "Emil"
//! evaluation machine (Table III): a dual-socket Intel Xeon E5-2695v2 host and an Intel
//! Xeon Phi 7120P co-processor.

use crate::topology::Topology;

/// What role a device plays in the heterogeneous node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// The multi-core host CPU(s); runs the operating system and launches offloads.
    HostCpu,
    /// A many-core co-processor / accelerator reachable over PCIe (e.g. Intel Xeon Phi).
    ManyCoreAccelerator,
}

impl DeviceKind {
    /// Human readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::HostCpu => "host",
            DeviceKind::ManyCoreAccelerator => "device",
        }
    }
}

/// Architectural description of one device of the heterogeneous platform.
///
/// The fields up to `cache_mb` mirror the hardware datasheet values reported in the
/// paper's Table III.  The remaining fields are the calibration anchors of the
/// analytical performance model (see [`crate::perf_model`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human readable device name, e.g. `"Intel Xeon E5-2695v2 (dual socket)"`.
    pub name: String,
    /// Whether this device is the host or an accelerator.
    pub kind: DeviceKind,
    /// Number of CPU sockets (always 1 for accelerators).
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core (2 for Xeon E5 hyper-threading, 4 for Xeon Phi).
    pub threads_per_core: u32,
    /// Cores reserved for system software and unavailable to the application
    /// (the Xeon Phi µOS occupies one core).
    pub reserved_cores: u32,
    /// Nominal core frequency in GHz.
    pub base_frequency_ghz: f64,
    /// Maximum (turbo) core frequency in GHz.
    pub turbo_frequency_ghz: f64,
    /// SIMD register width in bits (256 for AVX on the host, 512 on the Xeon Phi).
    pub simd_width_bits: u32,
    /// Peak memory bandwidth per socket in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Last-level cache size in MB.
    pub cache_mb: f64,
    /// Calibrated throughput (bytes/second) of one thread running alone on a core for
    /// the reference workload (cost factor 1.0, i.e. the DNA DFA scan).
    pub scan_rate_per_thread: f64,
    /// Relative throughput of a single core when `k` hardware threads are placed on it,
    /// normalised so that `smt_gain[0] == 1.0`.  The host curve saturates around 1.4×
    /// with hyper-threading; the in-order Xeon Phi cores need several threads to hide
    /// latency and reach ~3.6× the single-thread rate with all four threads.
    pub smt_gain: Vec<f64>,
    /// Per-socket contention coefficient: each additional active core on a socket
    /// degrades the effective per-core rate by roughly this relative amount
    /// (shared last-level cache, ring/mesh interconnect and memory-controller pressure).
    pub core_contention: f64,
}

impl DeviceSpec {
    /// Topology (sockets × cores × hardware threads, minus reserved cores) of the device.
    pub fn topology(&self) -> Topology {
        Topology::new(
            self.sockets,
            self.cores_per_socket,
            self.threads_per_core,
            self.reserved_cores,
        )
    }

    /// Number of cores usable by the application.
    pub fn usable_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket - self.reserved_cores
    }

    /// Maximum number of application hardware threads.
    pub fn max_threads(&self) -> u32 {
        self.usable_cores() * self.threads_per_core
    }

    /// Total peak memory bandwidth (all sockets) in bytes/second.
    pub fn total_bandwidth_bytes(&self) -> f64 {
        self.mem_bandwidth_gbs * self.sockets as f64 * 1e9
    }

    /// Relative core throughput with `threads_on_core` resident hardware threads.
    ///
    /// Values beyond the calibrated SMT curve saturate at the last entry; zero threads
    /// contribute zero throughput.
    pub fn smt_factor(&self, threads_on_core: u32) -> f64 {
        if threads_on_core == 0 {
            return 0.0;
        }
        let idx = (threads_on_core as usize - 1).min(self.smt_gain.len().saturating_sub(1));
        self.smt_gain.get(idx).copied().unwrap_or(1.0)
    }

    /// Aggregate scan rate (bytes/s) of the whole device with every hardware thread busy,
    /// ignoring contention and parallel overheads.  Useful as an upper bound in tests.
    pub fn peak_scan_rate(&self) -> f64 {
        self.scan_rate_per_thread
            * self.smt_factor(self.threads_per_core)
            * self.usable_cores() as f64
    }

    /// Preset: dual-socket Intel Xeon E5-2695v2 host (2 × 12 cores, 2-way SMT, AVX).
    ///
    /// Table III of the paper: 2.4–3.2 GHz, 30 MB cache, 59.7 GB/s per socket.
    pub fn xeon_e5_2695v2_dual() -> Self {
        DeviceSpec {
            name: "Intel Xeon E5-2695v2 (dual socket)".to_string(),
            kind: DeviceKind::HostCpu,
            sockets: 2,
            cores_per_socket: 12,
            threads_per_core: 2,
            reserved_cores: 0,
            base_frequency_ghz: 2.4,
            turbo_frequency_ghz: 3.2,
            simd_width_bits: 256,
            mem_bandwidth_gbs: 59.7,
            cache_mb: 30.0,
            // Calibration: one thread per core scans roughly 210 MB/s of DNA; a second
            // hyper-thread adds ~44 %.
            scan_rate_per_thread: 211.0e6,
            smt_gain: vec![1.0, 1.44],
            core_contention: 0.025,
        }
    }

    /// Preset: Intel Xeon Phi 7120P co-processor (61 cores, 4-way SMT, 512-bit SIMD).
    ///
    /// One core is reserved for the lightweight µOS, leaving 60 cores / 240 threads for
    /// the application, exactly as in the paper's experiments.
    pub fn xeon_phi_7120p() -> Self {
        DeviceSpec {
            name: "Intel Xeon Phi 7120P".to_string(),
            kind: DeviceKind::ManyCoreAccelerator,
            sockets: 1,
            cores_per_socket: 61,
            threads_per_core: 4,
            reserved_cores: 1,
            base_frequency_ghz: 1.238,
            turbo_frequency_ghz: 1.333,
            simd_width_bits: 512,
            mem_bandwidth_gbs: 352.0,
            cache_mb: 30.5,
            // Calibration: the in-order cores need all four hardware threads to approach
            // their peak of ~97 MB/s per core for the DNA scan.
            scan_rate_per_thread: 36.0e6,
            smt_gain: vec![1.0, 1.50, 2.20, 2.70],
            core_contention: 0.0012,
        }
    }

    /// Preset: a generic discrete GPU-like accelerator.
    ///
    /// Not part of the paper's machine; provided so that multi-accelerator
    /// configurations (the architecture diagram allows 1–8 devices) and the
    /// `multi_accelerator` example have a second device type with different
    /// performance characteristics.
    pub fn generic_gpu() -> Self {
        DeviceSpec {
            name: "Generic many-core GPU".to_string(),
            kind: DeviceKind::ManyCoreAccelerator,
            sockets: 1,
            cores_per_socket: 56,
            threads_per_core: 8,
            reserved_cores: 0,
            base_frequency_ghz: 1.1,
            turbo_frequency_ghz: 1.4,
            simd_width_bits: 1024,
            mem_bandwidth_gbs: 480.0,
            cache_mb: 6.0,
            scan_rate_per_thread: 18.0e6,
            smt_gain: vec![1.0, 1.9, 3.4, 4.6, 5.5, 6.2, 6.7, 7.0],
            core_contention: 0.0008,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_preset_matches_table_iii() {
        let host = DeviceSpec::xeon_e5_2695v2_dual();
        assert_eq!(host.kind, DeviceKind::HostCpu);
        assert_eq!(host.sockets * host.cores_per_socket, 24);
        assert_eq!(host.max_threads(), 48);
        assert!((host.base_frequency_ghz - 2.4).abs() < 1e-9);
        assert!((host.cache_mb - 30.0).abs() < 1e-9);
    }

    #[test]
    fn phi_preset_matches_table_iii() {
        let phi = DeviceSpec::xeon_phi_7120p();
        assert_eq!(phi.kind, DeviceKind::ManyCoreAccelerator);
        assert_eq!(phi.sockets * phi.cores_per_socket, 61);
        // one core is reserved for the µOS -> 60 usable cores, 240 threads
        assert_eq!(phi.usable_cores(), 60);
        assert_eq!(phi.max_threads(), 240);
        assert_eq!(phi.simd_width_bits, 512);
        assert!((phi.cache_mb - 30.5).abs() < 1e-9);
    }

    #[test]
    fn smt_factor_is_monotone_and_saturates() {
        for spec in [
            DeviceSpec::xeon_e5_2695v2_dual(),
            DeviceSpec::xeon_phi_7120p(),
            DeviceSpec::generic_gpu(),
        ] {
            assert_eq!(spec.smt_factor(0), 0.0);
            let mut prev = 0.0;
            for k in 1..=spec.threads_per_core {
                let f = spec.smt_factor(k);
                assert!(f >= prev, "SMT gain must be monotone for {}", spec.name);
                prev = f;
            }
            // beyond the curve the factor saturates
            assert_eq!(
                spec.smt_factor(spec.threads_per_core + 3),
                spec.smt_factor(spec.threads_per_core)
            );
            assert!((spec.smt_factor(1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn peak_rates_are_in_a_plausible_range() {
        // Both devices sustain a few GB/s of DNA scanning when fully occupied.  The host
        // is somewhat faster overall, which is why the paper's optimal splits assign the
        // larger share (60-70 %) to the host; offloading still pays off because the two
        // run concurrently.
        let host = DeviceSpec::xeon_e5_2695v2_dual();
        let phi = DeviceSpec::xeon_phi_7120p();
        let gbs = |r: f64| r / 1e9;
        assert!(gbs(host.peak_scan_rate()) > 4.0 && gbs(host.peak_scan_rate()) < 12.0);
        assert!(gbs(phi.peak_scan_rate()) > 3.0 && gbs(phi.peak_scan_rate()) < 10.0);
        assert!(host.peak_scan_rate() > phi.peak_scan_rate());
    }

    #[test]
    fn bandwidth_accounts_for_sockets() {
        let host = DeviceSpec::xeon_e5_2695v2_dual();
        assert!((host.total_bandwidth_bytes() - 2.0 * 59.7e9).abs() < 1.0);
    }
}
