//! # hetero-platform
//!
//! A simulator of a heterogeneous compute node consisting of a multi-socket CPU host and
//! one or more many-core accelerators (modelled after the "Emil" machine used in
//! *Memeti & Pllana, Combinatorial Optimization of Work Distribution on Heterogeneous
//! Systems, ICPP Workshops 2016*: two 12-core Intel Xeon E5-2695v2 CPUs plus an Intel
//! Xeon Phi 7120P co-processor).
//!
//! The simulator provides an analytical performance model that maps a *system
//! configuration* — number of threads, thread affinity and workload fraction for the
//! host and each accelerator — to host/device execution times.  It substitutes the real
//! hardware used by the paper: the optimization problem studied there only observes the
//! black-box mapping `configuration -> (T_host, T_device)`, so a calibrated analytical
//! model that reproduces the qualitative shape of that mapping (hyper-threading gains,
//! affinity effects, offload overheads, measurement noise) preserves the behaviour that
//! matters for the paper's claims.
//!
//! ## Example
//!
//! ```
//! use hetero_platform::{Affinity, ExecutionConfig, HeterogeneousPlatform, Partition, WorkloadProfile};
//!
//! let platform = HeterogeneousPlatform::emil();
//! let workload = WorkloadProfile::dna_scan("human", 3_170_000_000);
//!
//! // 60 % of the sequence on the host (48 threads, scatter affinity),
//! // 40 % offloaded to the Xeon Phi (240 threads, balanced affinity).
//! let measurement = platform
//!     .execute(
//!         &workload,
//!         &Partition::two_way(0.60).unwrap(),
//!         &ExecutionConfig::new(48, Affinity::Scatter),
//!         &[ExecutionConfig::new(240, Affinity::Balanced)],
//!     )
//!     .unwrap();
//!
//! assert!(measurement.t_total >= measurement.t_host.max(measurement.t_device));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod affinity;
pub mod counters;
pub mod device;
pub mod error;
pub mod noise;
pub mod offload;
pub mod perf_model;
pub mod platform;
pub mod topology;
pub mod workload;

pub use affinity::{Affinity, Placement};
pub use counters::ExecutionStats;
pub use device::{DeviceKind, DeviceSpec};
pub use error::PlatformError;
pub use noise::NoiseModel;
pub use offload::OffloadModel;
pub use perf_model::{PerfModel, PerfModelParams};
pub use platform::{
    ExecutionConfig, ExecutionRequest, HeterogeneousPlatform, Measurement, Partition,
};
pub use topology::Topology;
pub use workload::WorkloadProfile;
