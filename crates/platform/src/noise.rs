//! Deterministic measurement-noise model.
//!
//! Real measurements on the paper's machine vary run-to-run by a few percent; this is
//! exactly the irreducible error floor their Boosted Decision Tree predictor reports
//! (≈5.2 % on the host, ≈3.1 % on the device).  The simulator therefore perturbs every
//! "measured" execution time with multiplicative log-normal noise.  The noise is
//! *deterministic*: it is derived by hashing the measurement context (device, threads,
//! affinity, byte count, experiment seed), so repeating the same experiment yields the
//! same value and the whole evaluation pipeline stays reproducible.

/// Multiplicative log-normal noise applied to simulated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of `ln(noise factor)`.  `0.03` ≈ 3 % run-to-run variation.
    pub sigma: f64,
    /// Base seed mixed into every hash; change it to obtain an independent "re-run".
    pub seed: u64,
    /// If `false` the noise factor is always exactly 1.0.
    pub enabled: bool,
}

impl NoiseModel {
    /// Noise model calibrated to the paper's observed prediction-error floor.
    pub fn paper_default(seed: u64) -> Self {
        NoiseModel {
            sigma: 0.028,
            seed,
            enabled: true,
        }
    }

    /// A noiseless model (useful for analytical tests).
    pub fn disabled() -> Self {
        NoiseModel {
            sigma: 0.0,
            seed: 0,
            enabled: false,
        }
    }

    /// Deterministic multiplicative factor for the measurement identified by `tags`.
    ///
    /// The same `tags` always produce the same factor.  The factor is `exp(sigma * z)`
    /// where `z` is a standard normal variate derived from the hashed tags.
    pub fn factor(&self, tags: &[u64]) -> f64 {
        if !self.enabled || self.sigma == 0.0 {
            return 1.0;
        }
        let mut h = splitmix64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        for &t in tags {
            h = splitmix64(h ^ t);
        }
        // Box-Muller from two further splitmix draws.
        let u1 = to_unit_open(splitmix64(h ^ 0xdead_beef_cafe_f00d));
        let u2 = to_unit_open(splitmix64(h ^ 0x1234_5678_9abc_def0));
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.sigma * z).exp()
    }
}

/// SplitMix64 hash step (public-domain constant-time mixer).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a `u64` to the open interval (0, 1).
fn to_unit_open(x: u64) -> f64 {
    let v = (x >> 11) as f64 / (1u64 << 53) as f64;
    v.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_noise_is_identity() {
        let n = NoiseModel::disabled();
        assert_eq!(n.factor(&[1, 2, 3]), 1.0);
    }

    #[test]
    fn noise_is_deterministic() {
        let n = NoiseModel::paper_default(7);
        assert_eq!(n.factor(&[42, 7]), n.factor(&[42, 7]));
        // different tags give different noise
        assert_ne!(n.factor(&[42, 7]), n.factor(&[42, 8]));
        // different seeds give different noise for the same tags
        let m = NoiseModel::paper_default(8);
        assert_ne!(n.factor(&[42, 7]), m.factor(&[42, 7]));
    }

    #[test]
    fn noise_is_centered_and_small() {
        let n = NoiseModel::paper_default(1);
        let mut sum = 0.0;
        let mut count = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..5000u64 {
            let f = n.factor(&[i]);
            assert!(f > 0.0);
            sum += f;
            count += 1.0;
            min = min.min(f);
            max = max.max(f);
        }
        let mean = sum / count;
        assert!(
            (mean - 1.0).abs() < 0.01,
            "mean factor {mean} too far from 1"
        );
        // ±5 sigma bounds for sigma = 0.028
        assert!(
            min > 0.85 && max < 1.18,
            "noise range [{min}, {max}] too wide"
        );
    }

    #[test]
    fn splitmix_spreads_bits() {
        // consecutive inputs should produce well-separated outputs
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!(((a ^ b).count_ones()) > 10);
    }
}
