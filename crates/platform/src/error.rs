//! Error type for platform simulation.

use std::fmt;

/// Errors produced while validating or executing a simulated configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The requested number of threads exceeds what the device supports.
    TooManyThreads {
        /// Device name.
        device: String,
        /// Requested thread count.
        requested: u32,
        /// Maximum supported thread count.
        maximum: u32,
    },
    /// A thread count of zero was requested for a device that received work.
    ZeroThreads {
        /// Device name.
        device: String,
    },
    /// The requested affinity policy is not available on the device
    /// (e.g. `balanced` only exists on the accelerator runtime).
    UnsupportedAffinity {
        /// Device name.
        device: String,
        /// The offending affinity policy.
        affinity: crate::Affinity,
    },
    /// The partition fractions do not describe a valid split of the workload.
    InvalidPartition {
        /// Human readable description of the problem.
        reason: String,
    },
    /// The number of per-device execution configs does not match the number of
    /// accelerators that received work.
    ConfigCountMismatch {
        /// Number of accelerators in the platform.
        accelerators: usize,
        /// Number of device configurations supplied.
        configs: usize,
    },
    /// The workload is degenerate (zero bytes).
    EmptyWorkload,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::TooManyThreads {
                device,
                requested,
                maximum,
            } => write!(
                f,
                "device `{device}` supports at most {maximum} hardware threads, {requested} requested"
            ),
            PlatformError::ZeroThreads { device } => {
                write!(f, "device `{device}` received work but zero threads")
            }
            PlatformError::UnsupportedAffinity { device, affinity } => {
                write!(f, "affinity `{affinity}` is not supported on device `{device}`")
            }
            PlatformError::InvalidPartition { reason } => {
                write!(f, "invalid workload partition: {reason}")
            }
            PlatformError::ConfigCountMismatch {
                accelerators,
                configs,
            } => write!(
                f,
                "platform has {accelerators} accelerator(s) but {configs} device configuration(s) were supplied"
            ),
            PlatformError::EmptyWorkload => write!(f, "workload has zero bytes"),
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Affinity;

    #[test]
    fn display_mentions_device_and_counts() {
        let err = PlatformError::TooManyThreads {
            device: "phi".into(),
            requested: 300,
            maximum: 240,
        };
        let text = err.to_string();
        assert!(text.contains("phi"));
        assert!(text.contains("300"));
        assert!(text.contains("240"));
    }

    #[test]
    fn display_other_variants_are_nonempty() {
        let errors = [
            PlatformError::ZeroThreads {
                device: "host".into(),
            },
            PlatformError::UnsupportedAffinity {
                device: "host".into(),
                affinity: Affinity::Balanced,
            },
            PlatformError::InvalidPartition {
                reason: "fractions sum to 1.5".into(),
            },
            PlatformError::ConfigCountMismatch {
                accelerators: 1,
                configs: 0,
            },
            PlatformError::EmptyWorkload,
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&PlatformError::EmptyWorkload);
    }
}
