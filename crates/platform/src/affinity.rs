//! Thread-affinity policies and the placements they induce.
//!
//! The paper treats thread affinity as a categorical tuning parameter with the values
//! exposed by the Intel OpenMP runtime: `none`, `scatter` and `compact` on the host and
//! `balanced`, `scatter` and `compact` on the Xeon Phi.  This module turns a policy plus
//! a thread count into a concrete [`Placement`] — how many hardware threads land on each
//! physical core — which is what the performance model consumes.

use std::fmt;

use crate::topology::Topology;

/// Thread-affinity policy (`KMP_AFFINITY` style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Affinity {
    /// No explicit binding; the OS scheduler spreads threads (modelled as `scatter`
    /// with a small efficiency penalty and extra run-to-run jitter).
    None,
    /// Round-robin threads across sockets and cores, maximising cache/bandwidth per thread.
    Scatter,
    /// Pack threads onto as few cores (and sockets) as possible.
    Compact,
    /// Spread threads evenly across cores while keeping consecutive thread ids on the
    /// same core (Xeon Phi specific policy).
    Balanced,
}

impl Affinity {
    /// All policies, in a stable order.
    pub const ALL: [Affinity; 4] = [
        Affinity::None,
        Affinity::Scatter,
        Affinity::Compact,
        Affinity::Balanced,
    ];

    /// The policies the paper considers for the host CPU (Table I).
    pub const HOST: [Affinity; 3] = [Affinity::None, Affinity::Scatter, Affinity::Compact];

    /// The policies the paper considers for the accelerator (Table I).
    pub const DEVICE: [Affinity; 3] = [Affinity::Balanced, Affinity::Scatter, Affinity::Compact];

    /// Short lowercase name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Affinity::None => "none",
            Affinity::Scatter => "scatter",
            Affinity::Compact => "compact",
            Affinity::Balanced => "balanced",
        }
    }

    /// Parse a policy from its lowercase name.
    pub fn parse(s: &str) -> Option<Affinity> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" => Some(Affinity::None),
            "scatter" => Some(Affinity::Scatter),
            "compact" => Some(Affinity::Compact),
            "balanced" => Some(Affinity::Balanced),
            _ => None,
        }
    }

    /// Whether this policy is available on the host CPU in the paper's setup.
    pub fn valid_for_host(&self) -> bool {
        Self::HOST.contains(self)
    }

    /// Whether this policy is available on the accelerator in the paper's setup.
    pub fn valid_for_device(&self) -> bool {
        Self::DEVICE.contains(self)
    }

    /// Compute the placement of `threads` hardware threads on `topology` under this policy.
    ///
    /// The returned placement always accounts for exactly `min(threads, max_threads)`
    /// threads; callers validate the thread count separately.
    pub fn place(&self, topology: &Topology, threads: u32) -> Placement {
        let threads = threads.min(topology.max_threads());
        match self {
            Affinity::Compact => place_compact(topology, threads),
            Affinity::Scatter | Affinity::None => place_scatter(topology, threads),
            Affinity::Balanced => place_balanced(topology, threads),
        }
    }
}

impl fmt::Display for Affinity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Concrete assignment of hardware threads to physical cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `threads_per_core[c]` = number of hardware threads placed on usable core `c`.
    threads_per_core: Vec<u32>,
    /// Copy of the topology used to build the placement.
    topology: Topology,
}

impl Placement {
    fn new(topology: Topology) -> Self {
        Placement {
            threads_per_core: vec![0; topology.usable_cores() as usize],
            topology,
        }
    }

    /// Number of threads on core `core`.
    pub fn threads_on_core(&self, core: u32) -> u32 {
        self.threads_per_core[core as usize]
    }

    /// Per-core thread counts.
    pub fn per_core(&self) -> &[u32] {
        &self.threads_per_core
    }

    /// Total number of placed threads.
    pub fn total_threads(&self) -> u32 {
        self.threads_per_core.iter().sum()
    }

    /// Number of cores with at least one thread.
    pub fn active_cores(&self) -> u32 {
        self.threads_per_core.iter().filter(|&&t| t > 0).count() as u32
    }

    /// Number of active cores on the given socket.
    pub fn active_cores_on_socket(&self, socket: u32) -> u32 {
        self.threads_per_core
            .iter()
            .enumerate()
            .filter(|(core, &t)| t > 0 && self.topology.socket_of_core(*core as u32) == socket)
            .count() as u32
    }

    /// Number of sockets with at least one active core.
    pub fn active_sockets(&self) -> u32 {
        (0..self.topology.sockets())
            .filter(|&s| self.active_cores_on_socket(s) > 0)
            .count() as u32
    }

    /// The topology this placement refers to.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

fn place_compact(topology: &Topology, threads: u32) -> Placement {
    let mut placement = Placement::new(*topology);
    let mut remaining = threads;
    for core in topology.cores_compact_order() {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(topology.threads_per_core());
        placement.threads_per_core[core as usize] = take;
        remaining -= take;
    }
    placement
}

fn place_scatter(topology: &Topology, threads: u32) -> Placement {
    let mut placement = Placement::new(*topology);
    let mut remaining = threads;
    let order = topology.cores_scatter_order();
    'outer: for _round in 0..topology.threads_per_core() {
        for &core in &order {
            if remaining == 0 {
                break 'outer;
            }
            placement.threads_per_core[core as usize] += 1;
            remaining -= 1;
        }
    }
    placement
}

fn place_balanced(topology: &Topology, threads: u32) -> Placement {
    let mut placement = Placement::new(*topology);
    let cores = topology.usable_cores();
    if threads == 0 {
        return placement;
    }
    if threads <= cores {
        // one thread per core, consecutive cores
        for core in 0..threads {
            placement.threads_per_core[core as usize] = 1;
        }
    } else {
        let base = threads / cores;
        let extra = threads % cores;
        for core in 0..cores {
            let t = base + u32::from(core < extra);
            placement.threads_per_core[core as usize] = t.min(topology.threads_per_core());
        }
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> Topology {
        Topology::new(2, 12, 2, 0)
    }

    fn phi() -> Topology {
        Topology::new(1, 61, 4, 1)
    }

    #[test]
    fn names_round_trip() {
        for a in Affinity::ALL {
            assert_eq!(Affinity::parse(a.name()), Some(a));
        }
        assert_eq!(Affinity::parse("bogus"), None);
        assert_eq!(Affinity::parse("  Scatter "), Some(Affinity::Scatter));
    }

    #[test]
    fn host_and_device_policy_sets_match_table_i() {
        assert!(Affinity::None.valid_for_host());
        assert!(!Affinity::Balanced.valid_for_host());
        assert!(Affinity::Balanced.valid_for_device());
        assert!(!Affinity::None.valid_for_device());
        assert!(Affinity::Scatter.valid_for_host() && Affinity::Scatter.valid_for_device());
        assert!(Affinity::Compact.valid_for_host() && Affinity::Compact.valid_for_device());
    }

    #[test]
    fn compact_uses_fewest_cores() {
        let p = Affinity::Compact.place(&host(), 6);
        assert_eq!(p.total_threads(), 6);
        assert_eq!(p.active_cores(), 3); // 2 threads per core
        assert_eq!(p.active_sockets(), 1);
    }

    #[test]
    fn scatter_uses_most_cores_and_both_sockets() {
        let p = Affinity::Scatter.place(&host(), 6);
        assert_eq!(p.total_threads(), 6);
        assert_eq!(p.active_cores(), 6); // 1 thread per core
        assert_eq!(p.active_sockets(), 2);
    }

    #[test]
    fn none_places_like_scatter() {
        let s = Affinity::Scatter.place(&host(), 17);
        let n = Affinity::None.place(&host(), 17);
        assert_eq!(s, n);
    }

    #[test]
    fn scatter_wraps_to_second_hardware_thread() {
        let p = Affinity::Scatter.place(&host(), 30);
        assert_eq!(p.total_threads(), 30);
        assert_eq!(p.active_cores(), 24);
        // 30 - 24 = 6 cores carry a second hyper-thread
        let twos = p.per_core().iter().filter(|&&t| t == 2).count();
        assert_eq!(twos, 6);
    }

    #[test]
    fn balanced_spreads_evenly_on_phi() {
        let p = Affinity::Balanced.place(&phi(), 120);
        assert_eq!(p.total_threads(), 120);
        assert_eq!(p.active_cores(), 60);
        assert!(p.per_core().iter().all(|&t| t == 2));
    }

    #[test]
    fn balanced_with_few_threads_uses_one_thread_per_core() {
        let p = Affinity::Balanced.place(&phi(), 30);
        assert_eq!(p.active_cores(), 30);
        assert!(p.per_core().iter().all(|&t| t <= 1));
    }

    #[test]
    fn compact_on_phi_fills_cores_four_deep() {
        let p = Affinity::Compact.place(&phi(), 16);
        assert_eq!(p.active_cores(), 4);
        assert!(p.per_core().iter().take(4).all(|&t| t == 4));
    }

    #[test]
    fn placement_never_exceeds_capacity() {
        for topology in [host(), phi()] {
            for affinity in Affinity::ALL {
                for threads in [0, 1, 2, 7, 24, 48, 61, 240, 500] {
                    let p = affinity.place(&topology, threads);
                    assert_eq!(p.total_threads(), threads.min(topology.max_threads()));
                    assert!(p
                        .per_core()
                        .iter()
                        .all(|&t| t <= topology.threads_per_core()));
                }
            }
        }
    }

    #[test]
    fn full_machine_is_identical_for_all_policies() {
        let topology = host();
        let full = topology.max_threads();
        let compact = Affinity::Compact.place(&topology, full);
        let scatter = Affinity::Scatter.place(&topology, full);
        let balanced = Affinity::Balanced.place(&topology, full);
        assert_eq!(compact.per_core(), scatter.per_core());
        assert_eq!(scatter.per_core(), balanced.per_core());
    }
}
