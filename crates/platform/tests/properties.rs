//! Property-based tests for the platform simulator.

use hetero_platform::{
    Affinity, DeviceSpec, ExecutionConfig, HeterogeneousPlatform, Partition, PerfModel, Topology,
    WorkloadProfile,
};
use proptest::prelude::*;

fn arb_affinity() -> impl Strategy<Value = Affinity> {
    prop_oneof![
        Just(Affinity::None),
        Just(Affinity::Scatter),
        Just(Affinity::Compact),
        Just(Affinity::Balanced),
    ]
}

fn arb_host_affinity() -> impl Strategy<Value = Affinity> {
    prop_oneof![
        Just(Affinity::None),
        Just(Affinity::Scatter),
        Just(Affinity::Compact),
    ]
}

fn arb_device_affinity() -> impl Strategy<Value = Affinity> {
    prop_oneof![
        Just(Affinity::Balanced),
        Just(Affinity::Scatter),
        Just(Affinity::Compact),
    ]
}

proptest! {
    /// Any placement accounts for exactly the requested number of threads (capped at
    /// the machine size) and never oversubscribes a core.
    #[test]
    fn placement_conserves_threads(
        sockets in 1u32..4,
        cores in 1u32..32,
        smt in 1u32..5,
        reserved in 0u32..2,
        threads in 0u32..700,
        affinity in arb_affinity(),
    ) {
        let total_cores = sockets * cores;
        prop_assume!(reserved < total_cores);
        let topology = Topology::new(sockets, cores, smt, reserved);
        let placement = affinity.place(&topology, threads);
        prop_assert_eq!(placement.total_threads(), threads.min(topology.max_threads()));
        prop_assert!(placement.per_core().iter().all(|&t| t <= smt));
        prop_assert_eq!(placement.per_core().len() as u32, topology.usable_cores());
    }

    /// The aggregate rate is monotone (non-decreasing) in the thread count for every
    /// affinity policy and device.
    #[test]
    fn aggregate_rate_is_monotone_in_threads(
        affinity in arb_affinity(),
        base in 1u32..240,
        extra in 1u32..16,
    ) {
        let model = PerfModel::default();
        for spec in [DeviceSpec::xeon_e5_2695v2_dual(), DeviceSpec::xeon_phi_7120p()] {
            let lo = base.min(spec.max_threads());
            let hi = (base + extra).min(spec.max_threads());
            let r_lo = model.aggregate_rate(&spec, affinity, lo);
            let r_hi = model.aggregate_rate(&spec, affinity, hi);
            prop_assert!(r_hi >= r_lo * 0.999,
                "rate decreased from {} ({} thr) to {} ({} thr) on {}",
                r_lo, lo, r_hi, hi, spec.name);
        }
    }

    /// Compute time scales (weakly) monotonically with the input size.
    #[test]
    fn compute_time_monotone_in_bytes(
        mb in 1u64..4000,
        threads in 1u32..48,
        affinity in arb_host_affinity(),
    ) {
        let model = PerfModel::default();
        let spec = DeviceSpec::xeon_e5_2695v2_dual();
        let small = WorkloadProfile::dna_scan("s", mb * 1_000_000);
        let large = WorkloadProfile::dna_scan("l", (mb + 100) * 1_000_000);
        let t_small = model.compute_time(&spec, affinity, threads, &small).total();
        let t_large = model.compute_time(&spec, affinity, threads, &large).total();
        prop_assert!(t_large >= t_small);
    }

    /// For every valid two-way split the measurement satisfies
    /// `t_total == max(t_host, t_device)` and all times are non-negative and finite.
    #[test]
    fn measurement_invariants(
        host_pct in 0u32..=100,
        host_threads_idx in 0usize..7,
        device_threads_idx in 0usize..9,
        host_aff in arb_host_affinity(),
        device_aff in arb_device_affinity(),
        mb in 10u64..4000,
    ) {
        let host_threads = [2u32, 4, 6, 12, 24, 36, 48][host_threads_idx];
        let device_threads = [2u32, 4, 8, 16, 30, 60, 120, 180, 240][device_threads_idx];
        let platform = HeterogeneousPlatform::emil();
        let workload = WorkloadProfile::dna_scan("w", mb * 1_000_000);
        let m = platform.execute(
            &workload,
            &Partition::from_host_percent(host_pct).unwrap(),
            &ExecutionConfig::new(host_threads, host_aff),
            &[ExecutionConfig::new(device_threads, device_aff)],
        ).unwrap();
        prop_assert!(m.t_host >= 0.0 && m.t_host.is_finite());
        prop_assert!(m.t_device >= 0.0 && m.t_device.is_finite());
        prop_assert!((m.t_total - m.t_host.max(m.t_device)).abs() < 1e-12);
        if host_pct == 0 { prop_assert_eq!(m.t_host, 0.0); }
        if host_pct == 100 { prop_assert_eq!(m.t_device, 0.0); }
        if host_pct > 0 { prop_assert!(m.t_host > 0.0); }
        if host_pct < 100 { prop_assert!(m.t_device > 0.0); }
    }

    /// The simulator is a pure function of its inputs: repeating a measurement yields
    /// bit-identical results.
    #[test]
    fn measurements_are_reproducible(
        host_pct in 0u32..=100,
        mb in 10u64..2000,
        seed in 0u64..1000,
    ) {
        let platform = HeterogeneousPlatform::emil_with_seed(seed);
        let workload = WorkloadProfile::dna_scan("w", mb * 1_000_000);
        let cfg_h = ExecutionConfig::new(24, Affinity::Scatter);
        let cfg_d = ExecutionConfig::new(120, Affinity::Balanced);
        let a = platform.execute(&workload, &Partition::from_host_percent(host_pct).unwrap(), &cfg_h, &[cfg_d]).unwrap();
        let b = platform.execute(&workload, &Partition::from_host_percent(host_pct).unwrap(), &cfg_h, &[cfg_d]).unwrap();
        prop_assert_eq!(a.t_total, b.t_total);
        prop_assert_eq!(a.t_host, b.t_host);
        prop_assert_eq!(a.t_device, b.t_device);
    }

    /// `two_way` accepts exactly the fractions in [0,1] (regression for the
    /// silent-clamp hole that let NaN and out-of-range fractions through).
    #[test]
    fn two_way_accepts_exactly_unit_fractions(f in -2.0f64..=2.0) {
        let result = Partition::two_way(f);
        if (0.0..=1.0).contains(&f) {
            let p = result.unwrap();
            prop_assert!((p.host_fraction() - f).abs() < 1e-15);
            prop_assert!(p.device_fractions().iter().all(|d| (0.0..=1.0).contains(d)));
        } else {
            prop_assert!(result.is_err());
        }
    }

    /// Partition construction accepts exactly the vectors that are element-wise in
    /// [0,1] and sum to 1.
    #[test]
    fn partition_validation(fracs in proptest::collection::vec(0.0f64..=1.0, 1..5)) {
        let sum: f64 = fracs.iter().sum();
        let result = Partition::new(fracs.clone());
        if (sum - 1.0).abs() <= 1e-6 {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }
}
