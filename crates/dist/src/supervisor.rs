//! The supervised campaign runner: leases, retries with capped backoff, and
//! work-stealing on top of the sharded scan.
//!
//! [`ShardedCampaign::run_supervised`] runs the same partitioned exhaustive scan as
//! [`ShardedCampaign::run`], but every shard attempt executes under supervision:
//!
//! * **Leases + logical clock.**  A shared logical clock ticks once per scan batch;
//!   each worker renews a per-slot lease on every tick (the heartbeat).  A worker
//!   that stalls ([`crate::fault::FaultKind::Stall`]) stops renewing, observes its
//!   own expiry once the clock passes its lease, and fences itself off — emitting
//!   `shard.lease_expired` and failing the attempt.
//! * **Retries with capped exponential backoff.**  A failed attempt is retried up
//!   to [`RetryPolicy::max_attempts`] times, waiting
//!   `min(backoff_base · 2^k, backoff_cap)` logical ticks between tries and
//!   emitting `shard.retried`.
//! * **Work stealing.**  A shard that exhausts its retries is dead; its range goes
//!   to a shared steal queue, and surviving shards (or, as a last resort, the
//!   coordinator itself after the parallel join) take it over, emitting
//!   `shard.stolen`.
//! * **Idempotent resume.**  Every attempt scans store-first: persisted keys are
//!   answered by the store and **never re-evaluated**, so a retry or a thief only
//!   pays for the records the fault actually lost.
//!
//! The hard invariant carries over from the coordinator: under *any* injected
//! [`FaultPlan`] a supervised campaign converges to the bit-identical
//! `(best_config, best_energy, best_index)` of the fault-free run.  Faults only
//! decide *who* evaluates a configuration and *when* — never the value, and never
//! the `(energy, index)` merge order.  Termination is structural: the plan is
//! finite and every failed attempt consumes a scheduled event, so after finitely
//! many failures every range completes.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

use wd_obs::{FieldValue, NoopRecorder, Recorder};
use wd_opt::{better_indexed, CacheStats, Objective, ResilienceStats, SearchSpace, ShardPlan};

use crate::coordinator::{merge_shard_bests, CampaignOutcome, ShardReport, ShardedCampaign};
use crate::error::CampaignError;
use crate::fault::{FaultKind, FaultPlan, FaultyObjective, FaultyStore};
use crate::store::ResultStore;
use crate::sync::lock;

/// Retry and lease parameters of a supervised campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts a worker makes on one range before giving it up to the steal
    /// queue (at least 1).
    pub max_attempts: usize,
    /// Backoff before the first retry, in logical-clock ticks.
    pub backoff_base: u64,
    /// Upper bound on the backoff, in logical-clock ticks.
    pub backoff_cap: u64,
    /// How many ticks a lease stays valid past its last renewal (the heartbeat
    /// renews once per scan batch).
    pub lease_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: 1,
            backoff_cap: 8,
            lease_ticks: 3,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry_index` (0-based):
    /// `min(backoff_base · 2^retry_index, backoff_cap)` ticks, saturating.
    pub fn backoff_ticks(&self, retry_index: usize) -> u64 {
        let factor = if retry_index >= 63 {
            u64::MAX
        } else {
            1u64 << retry_index
        };
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// Why one supervised attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The objective failed to evaluate a batch (nothing was recorded).
    EvalError,
    /// The worker died between batches.
    ShardDeath,
    /// The worker stalled and its lease expired on the logical clock.
    LeaseExpired,
    /// A batch append was torn mid-write (the prefix persisted, the attempt died).
    TornWrite,
}

/// One attempt a worker made on a range, successful or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// Executing worker slot (`shard_count` for the coordinator's final drain).
    pub slot: usize,
    /// The slot's cumulative attempt counter at the time.
    pub attempt: usize,
    /// Global enumeration-index range scanned.
    pub range: Range<usize>,
    /// When the range was stolen: the slot that originally owned (and abandoned)
    /// it.
    pub stolen_from: Option<usize>,
    /// `None` for a completed scan, otherwise why the attempt aborted.
    pub failure: Option<FailureReason>,
}

/// How much supervision a campaign needed, beyond the merged result itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisionReport {
    /// Merged attempt/retry/lease/steal counters.
    pub resilience: ResilienceStats,
    /// Store hit/miss counters accumulated by attempts that *failed*.  Misses here
    /// are evaluations whose results were persisted before the fault — the
    /// store-first rescan reuses them, so they are spent once, not wasted.
    pub failed_stats: CacheStats,
    /// Every attempt in deterministic `(slot, attempt)` order.
    pub attempts: Vec<AttemptRecord>,
    /// Worker slots that exhausted their retries on their own range (their ranges
    /// were completed by work-stealing).
    pub dead_slots: Vec<usize>,
    /// Final value of the campaign's logical clock.
    pub final_clock: u64,
}

/// A [`CampaignOutcome`] plus the [`SupervisionReport`] describing how it was won.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedOutcome<C> {
    /// The merged campaign result — bit-identical to the fault-free run.
    pub outcome: CampaignOutcome<C>,
    /// What supervision had to do to get there.
    pub supervision: SupervisionReport,
}

/// A range waiting on the steal queue.
struct StolenRange {
    /// Plan position of the range (reports keep the plan's shard numbering).
    plan_shard: usize,
    /// The slot that abandoned it.
    owner: usize,
    range: Range<usize>,
}

/// One completed scan of a range.
struct ScanSuccess {
    best: Option<(usize, f64)>,
    requests: usize,
    stats: CacheStats,
}

/// Why one scan attempt stopped early.
enum AttemptError {
    /// An injected (or observed) fault — retryable.
    Fault(FailureReason, CacheStats),
    /// A campaign-level error — aborts the whole run.
    Fatal(CampaignError),
}

/// Mutable per-worker bookkeeping.
struct SlotState {
    slot: usize,
    attempt_counter: usize,
    attempts: Vec<AttemptRecord>,
    resilience: ResilienceStats,
    failed_stats: CacheStats,
    dead: bool,
    reports: Vec<ShardReport>,
}

impl SlotState {
    fn new(slot: usize) -> Self {
        SlotState {
            slot,
            attempt_counter: 0,
            attempts: Vec::new(),
            resilience: ResilienceStats::default(),
            failed_stats: CacheStats::default(),
            dead: false,
            reports: Vec::new(),
        }
    }
}

/// Shared supervision state: the logical clock, the per-slot leases, and the steal
/// queue, plus everything read-only the workers need.
struct Shared<'a> {
    clock: AtomicU64,
    leases: Vec<AtomicU64>,
    queue: Mutex<VecDeque<StolenRange>>,
    faults: &'a FaultPlan,
    policy: &'a RetryPolicy,
    recorder: &'a dyn Recorder,
    scope: &'a str,
    batch_size: usize,
}

impl Shared<'_> {
    /// Advance the logical clock by `ticks`, returning the new time.
    fn tick(&self, ticks: u64) -> u64 {
        self.clock
            .fetch_add(ticks, Ordering::Relaxed)
            .wrapping_add(ticks)
    }

    fn renew_lease(&self, slot: usize, now: u64) {
        if let Some(lease) = self.leases.get(slot) {
            lease.store(
                now.saturating_add(self.policy.lease_ticks),
                Ordering::Relaxed,
            );
        }
    }

    fn lease_expired(&self, slot: usize) -> bool {
        match self.leases.get(slot) {
            Some(lease) => self.clock.load(Ordering::Relaxed) > lease.load(Ordering::Relaxed),
            None => true,
        }
    }

    fn pop_stolen(&self) -> Option<StolenRange> {
        lock(&self.queue).pop_front()
    }

    fn push_stolen(&self, stolen: StolenRange) {
        lock(&self.queue).push_back(stolen);
    }

    fn emit_shard_started(&self, slot: usize, range: &Range<usize>) {
        if self.recorder.enabled() {
            self.recorder.event(
                self.scope,
                "shard_started",
                &[
                    ("shard", FieldValue::U64(slot as u64)),
                    ("start", FieldValue::U64(range.start as u64)),
                    ("len", FieldValue::U64(range.len() as u64)),
                ],
            );
        }
    }

    fn emit_shard_completed(&self, report: &ShardReport) {
        if self.recorder.enabled() {
            self.recorder.event(
                self.scope,
                "shard_completed",
                &[
                    ("shard", FieldValue::U64(report.shard_index as u64)),
                    ("best_index", FieldValue::U64(report.best_index as u64)),
                    ("best_energy", FieldValue::F64(report.best_energy)),
                    ("evaluations", FieldValue::U64(report.evaluations as u64)),
                    ("hits", FieldValue::U64(report.stats.hits as u64)),
                    ("misses", FieldValue::U64(report.stats.misses as u64)),
                ],
            );
        }
    }

    fn emit_lease_expired(&self, slot: usize, attempt: usize) {
        if self.recorder.enabled() {
            self.recorder.event(
                self.scope,
                "shard.lease_expired",
                &[
                    ("shard", FieldValue::U64(slot as u64)),
                    ("attempt", FieldValue::U64(attempt as u64)),
                    ("clock", FieldValue::U64(self.clock.load(Ordering::Relaxed))),
                ],
            );
        }
    }

    fn emit_retried(&self, slot: usize, attempt: usize, backoff: u64) {
        if self.recorder.enabled() {
            self.recorder.event(
                self.scope,
                "shard.retried",
                &[
                    ("shard", FieldValue::U64(slot as u64)),
                    ("attempt", FieldValue::U64(attempt as u64)),
                    ("backoff_ticks", FieldValue::U64(backoff)),
                ],
            );
        }
    }

    fn emit_stolen(&self, thief: usize, stolen: &StolenRange) {
        if self.recorder.enabled() {
            self.recorder.event(
                self.scope,
                "shard.stolen",
                &[
                    ("shard", FieldValue::U64(stolen.plan_shard as u64)),
                    ("owner", FieldValue::U64(stolen.owner as u64)),
                    ("thief", FieldValue::U64(thief as u64)),
                    ("start", FieldValue::U64(stolen.range.start as u64)),
                    ("len", FieldValue::U64(stolen.range.len() as u64)),
                ],
            );
        }
    }
}

/// Everything a supervised worker needs: the space, the store-backed evaluation
/// path, and the shared supervision state.
struct Ctx<'a, S: SearchSpace, O: ?Sized, R: ?Sized> {
    space: &'a S,
    materialized: Option<&'a [S::Config]>,
    objective: &'a O,
    store: &'a R,
    shared: Shared<'a>,
}

impl<S, O, R> Ctx<'_, S, O, R>
where
    S: SearchSpace + Sync,
    S::Config: Clone + Send + Sync,
    O: Objective<S::Config> + Sync,
    R: ResultStore<S::Config> + Sync + ?Sized,
{
    /// Materialise the configurations of one batch.
    fn configs_for(&self, range: &Range<usize>) -> Result<Vec<S::Config>, CampaignError> {
        if let Some(all) = self.materialized {
            return all
                .get(range.clone())
                .map(<[S::Config]>::to_vec)
                .ok_or(CampaignError::MissingConfig { index: range.start });
        }
        range
            .clone()
            .map(|index| {
                self.space
                    .config_at(index)
                    .ok_or(CampaignError::MissingConfig { index })
            })
            .collect()
    }

    /// One full scan of `range` as `slot`'s `attempt`-th attempt: store-first
    /// lookups, fallible evaluation, batch-granular heartbeat, and the attempt's
    /// scheduled fault routed through the wrappers.
    fn scan_attempt(
        &self,
        slot: usize,
        attempt: usize,
        range: &Range<usize>,
    ) -> Result<ScanSuccess, AttemptError> {
        let shared = &self.shared;
        let fate = shared.faults.fate(slot, attempt);
        let faulty_objective = FaultyObjective::new(self.objective, fate);
        let faulty_store = FaultyStore::new(self.store, fate);

        let mut best: Option<(usize, f64)> = None;
        let mut requests = 0usize;
        let mut stats = CacheStats::default();
        let mut start = range.start;
        let mut batch_index = 0usize;
        while start < range.end {
            let end = start.saturating_add(shared.batch_size).min(range.end);

            // heartbeat: tick the clock, renew this slot's lease
            let now = shared.tick(1);
            shared.renew_lease(slot, now);

            // scheduled between-batch faults
            if let Some(event) = fate {
                if event.after_batches == batch_index {
                    match event.kind {
                        FaultKind::ShardDeath => {
                            return Err(AttemptError::Fault(FailureReason::ShardDeath, stats));
                        }
                        FaultKind::Stall => {
                            // a stalled worker stops heartbeating; once the clock
                            // passes its lease it observes its own expiry and
                            // fences itself off
                            shared.tick(shared.policy.lease_ticks.saturating_add(1));
                            if shared.lease_expired(slot) {
                                shared.emit_lease_expired(slot, attempt);
                                return Err(AttemptError::Fault(
                                    FailureReason::LeaseExpired,
                                    stats,
                                ));
                            }
                            // the clock only moves forward, so this is unreachable
                            // in practice; a lease that somehow held keeps scanning
                        }
                        FaultKind::EvalError | FaultKind::TornWrite => {}
                    }
                }
            }

            let batch = start..end;
            let configs = self.configs_for(&batch).map_err(AttemptError::Fatal)?;
            requests += configs.len();

            let mut energies = vec![0.0f64; configs.len()];
            let mut pending: Vec<usize> = Vec::new();
            for (offset, found) in faulty_store.lookup_batch(&configs).into_iter().enumerate() {
                match found {
                    Some(energy) => energies[offset] = energy,
                    None => pending.push(offset),
                }
            }
            stats.hits += configs.len() - pending.len();
            if !pending.is_empty() {
                let pending_configs: Vec<S::Config> = pending
                    .iter()
                    .map(|&offset| configs[offset].clone())
                    .collect();
                // evaluate-then-record: an injected evaluation error aborts BEFORE
                // anything reaches the store, so the store never holds a value the
                // fault-free run would not have produced
                let fresh = faulty_objective
                    .try_evaluate_batch(&pending_configs)
                    .map_err(|_| AttemptError::Fault(FailureReason::EvalError, stats))?;
                faulty_store.record_batch(&pending_configs, &fresh);
                stats.misses += pending_configs.len();
                for (&offset, &energy) in pending.iter().zip(&fresh) {
                    energies[offset] = energy;
                }
                if faulty_store.tripped() {
                    // the torn record was evaluated but never persisted; the retry
                    // re-evaluates exactly that configuration
                    return Err(AttemptError::Fault(FailureReason::TornWrite, stats));
                }
            }

            for (offset, &energy) in energies.iter().enumerate() {
                let candidate = (start + offset, energy);
                best = Some(match best {
                    None => candidate,
                    Some(current) => better_indexed(current, candidate),
                });
            }
            start = end;
            batch_index += 1;
        }
        Ok(ScanSuccess {
            best,
            requests,
            stats,
        })
    }

    /// Run `range` to completion for `slot`, retrying with capped backoff.
    /// `Ok(None)` means the retry budget is exhausted (the caller queues the range
    /// for stealing).
    fn run_range(
        &self,
        state: &mut SlotState,
        plan_shard: usize,
        range: Range<usize>,
        stolen_from: Option<usize>,
    ) -> Result<Option<ShardReport>, CampaignError> {
        let shared = &self.shared;
        let mut tries = 0usize;
        loop {
            let attempt = state.attempt_counter;
            state.attempt_counter += 1;
            tries += 1;
            state.resilience.attempts += 1;
            match self.scan_attempt(state.slot, attempt, &range) {
                Ok(success) => {
                    state.attempts.push(AttemptRecord {
                        slot: state.slot,
                        attempt,
                        range: range.clone(),
                        stolen_from,
                        failure: None,
                    });
                    let (best_index, best_energy) = match success.best {
                        Some(best) => best,
                        // plan ranges are never empty, but an empty steal is not
                        // worth a panic either
                        None => return Ok(None),
                    };
                    return Ok(Some(ShardReport {
                        shard_index: plan_shard,
                        range,
                        best_index,
                        best_energy,
                        evaluations: success.requests,
                        stats: success.stats,
                    }));
                }
                Err(AttemptError::Fatal(error)) => return Err(error),
                Err(AttemptError::Fault(reason, partial)) => {
                    state.attempts.push(AttemptRecord {
                        slot: state.slot,
                        attempt,
                        range: range.clone(),
                        stolen_from,
                        failure: Some(reason),
                    });
                    state.failed_stats += partial;
                    if reason == FailureReason::LeaseExpired {
                        state.resilience.lease_expiries += 1;
                    }
                    if tries >= shared.policy.max_attempts.max(1) {
                        return Ok(None);
                    }
                    state.resilience.retries += 1;
                    let backoff = shared.policy.backoff_ticks(tries - 1);
                    shared.tick(backoff);
                    shared.emit_retried(state.slot, state.attempt_counter, backoff);
                }
            }
        }
    }

    /// One worker: scan its own plan range, then drain the steal queue.
    fn work_slot(&self, slot: usize, plan: &ShardPlan) -> Result<SlotState, CampaignError> {
        let mut state = SlotState::new(slot);
        let own = plan.range(slot);
        self.shared.emit_shard_started(slot, &own);
        match self.run_range(&mut state, slot, own.clone(), None)? {
            Some(report) => {
                self.shared.emit_shard_completed(&report);
                state.reports.push(report);
            }
            None => {
                state.dead = true;
                self.shared.push_stolen(StolenRange {
                    plan_shard: slot,
                    owner: slot,
                    range: own,
                });
            }
        }
        if !state.dead {
            while let Some(stolen) = self.shared.pop_stolen() {
                state.resilience.steals += 1;
                self.shared.emit_stolen(slot, &stolen);
                match self.run_range(
                    &mut state,
                    stolen.plan_shard,
                    stolen.range.clone(),
                    Some(stolen.owner),
                )? {
                    Some(report) => state.reports.push(report),
                    // hand it back: another survivor or the final drain takes it
                    None => self.shared.push_stolen(stolen),
                }
            }
        }
        Ok(state)
    }
}

impl ShardedCampaign {
    /// [`ShardedCampaign::run`] under supervision: leases with a logical-clock
    /// heartbeat, capped-exponential-backoff retries, work-stealing of dead
    /// shards, and idempotent store-first resume — with `faults` injected on the
    /// deterministic schedule of the [`FaultPlan`] (pass [`FaultPlan::none`] for a
    /// production run without injection).
    ///
    /// The merged `(best_config, best_energy, best_index)` is **bit-identical** to
    /// the fault-free [`ShardedCampaign::run`] for every plan, policy, shard count
    /// and batch size; keys persisted in `store` are never re-evaluated, so
    /// recovery only pays for what a fault actually lost.
    ///
    /// # Errors
    ///
    /// The same conditions as [`ShardedCampaign::run`], plus
    /// [`CampaignError::RangeAbandoned`] as a defensive backstop if a range could
    /// not be completed by any worker or the coordinator (structurally impossible
    /// under a finite plan).
    pub fn run_supervised<S, O, R>(
        &self,
        space: &S,
        objective: &O,
        store: &R,
        faults: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<SupervisedOutcome<S::Config>, CampaignError>
    where
        S: SearchSpace + Sync,
        S::Config: Clone + Send + Sync,
        O: Objective<S::Config> + Sync,
        R: ResultStore<S::Config> + Sync,
    {
        self.run_supervised_observed(
            space,
            objective,
            store,
            faults,
            policy,
            &NoopRecorder,
            "campaign",
        )
    }

    /// [`ShardedCampaign::run_supervised`] with every supervision decision
    /// published to `recorder` under `scope`: the coordinator lifecycle events
    /// (`shard_started` / `shard_completed` / `merged`) plus
    /// `shard.lease_expired`, `shard.retried` and `shard.stolen`.  The recorder
    /// only observes, so outcomes are bit-identical to the unobserved run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_supervised_observed<S, O, R>(
        &self,
        space: &S,
        objective: &O,
        store: &R,
        faults: &FaultPlan,
        policy: &RetryPolicy,
        recorder: &dyn Recorder,
        scope: &str,
    ) -> Result<SupervisedOutcome<S::Config>, CampaignError>
    where
        S: SearchSpace + Sync,
        S::Config: Clone + Send + Sync,
        O: Objective<S::Config> + Sync,
        R: ResultStore<S::Config> + Sync,
    {
        let (materialized, total) = match space.space_len() {
            Some(len) => (None, len),
            None => {
                let configs = space.enumerate().ok_or(CampaignError::NotEnumerable)?;
                let len = configs.len();
                (Some(configs), len)
            }
        };
        if total == 0 {
            return Err(CampaignError::EmptySpace);
        }
        let plan = ShardPlan::new(total, self.shard_count);
        let slots = plan.shard_count();

        let ctx = Ctx {
            space,
            materialized: materialized.as_deref(),
            objective,
            store,
            shared: Shared {
                clock: AtomicU64::new(0),
                // one lease per worker slot plus one for the coordinator's drain
                leases: (0..=slots).map(|_| AtomicU64::new(0)).collect(),
                queue: Mutex::new(VecDeque::new()),
                faults,
                policy,
                recorder,
                scope,
                batch_size: self.batch_size.max(1),
            },
        };

        let slot_results: Vec<Result<SlotState, CampaignError>> = (0..slots)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|slot| ctx.work_slot(slot, &plan))
            .collect();
        let mut states = Vec::with_capacity(slots + 1);
        for result in slot_results {
            states.push(result?);
        }

        // final drain: ranges still queued (e.g. the last worker died after every
        // survivor already returned) are completed by the coordinator itself,
        // running as the extra worker slot `slots`
        let mut drain = SlotState::new(slots);
        let mut drain_failures = 0usize;
        while let Some(stolen) = ctx.shared.pop_stolen() {
            drain.resilience.steals += 1;
            ctx.shared.emit_stolen(slots, &stolen);
            match self.drain_range(&ctx, &mut drain, &stolen)? {
                Some(report) => drain.reports.push(report),
                None => {
                    // every failure consumes a scheduled fault event, so more
                    // failures than events means the invariant broke — give up
                    // loudly instead of spinning
                    drain_failures += ctx.shared.policy.max_attempts.max(1);
                    if drain_failures > ctx.shared.faults.len() {
                        return Err(CampaignError::RangeAbandoned {
                            range: stolen.range,
                        });
                    }
                    ctx.shared.push_stolen(stolen);
                }
            }
        }
        let final_clock = ctx.shared.clock.load(Ordering::Relaxed);
        states.push(drain);

        // reports in plan order (one completed range per plan shard)
        let mut reports: Vec<ShardReport> = states
            .iter()
            .flat_map(|state| state.reports.iter().cloned())
            .collect();
        reports.sort_by_key(|report| report.range.start);
        let (best_index, best_energy) = merge_shard_bests(reports.iter().map(ShardReport::best))
            .ok_or(CampaignError::EmptySpace)?;
        let stats: CacheStats = reports.iter().map(|report| report.stats).sum();
        let failed_stats: CacheStats = states.iter().map(|state| state.failed_stats).sum();
        let resilience: ResilienceStats = states.iter().map(|state| state.resilience).sum();
        if recorder.enabled() {
            recorder.event(
                scope,
                "merged",
                &[
                    ("shards", FieldValue::U64(reports.len() as u64)),
                    ("best_index", FieldValue::U64(best_index as u64)),
                    ("best_energy", FieldValue::F64(best_energy)),
                    ("hits", FieldValue::U64(stats.hits as u64)),
                    ("misses", FieldValue::U64(stats.misses as u64)),
                ],
            );
        }
        // the audit trail records everything that ran, failed attempts included
        store.record_stats(stats + failed_stats);
        store.flush()?;

        let best_config = match materialized {
            Some(mut configs) => {
                if best_index < configs.len() {
                    configs.swap_remove(best_index)
                } else {
                    return Err(CampaignError::MissingConfig { index: best_index });
                }
            }
            None => space
                .config_at(best_index)
                .ok_or(CampaignError::MissingConfig { index: best_index })?,
        };

        let mut attempts: Vec<AttemptRecord> = states
            .iter()
            .flat_map(|state| state.attempts.iter().cloned())
            .collect();
        attempts.sort_by_key(|a| (a.slot, a.attempt));
        let dead_slots: Vec<usize> = states
            .iter()
            .filter(|state| state.dead)
            .map(|state| state.slot)
            .collect();

        Ok(SupervisedOutcome {
            outcome: CampaignOutcome {
                best_config,
                best_energy,
                best_index,
                evaluations: reports.iter().map(|report| report.evaluations).sum(),
                stats,
                shards: reports,
            },
            supervision: SupervisionReport {
                resilience,
                failed_stats,
                attempts,
                dead_slots,
                final_clock,
            },
        })
    }

    /// One coordinator-drain pass over a stolen range (split out so the generic
    /// bounds stay in one place).
    fn drain_range<S, O, R>(
        &self,
        ctx: &Ctx<'_, S, O, R>,
        drain: &mut SlotState,
        stolen: &StolenRange,
    ) -> Result<Option<ShardReport>, CampaignError>
    where
        S: SearchSpace + Sync,
        S::Config: Clone + Send + Sync,
        O: Objective<S::Config> + Sync,
        R: ResultStore<S::Config> + Sync,
    {
        ctx.run_range(
            drain,
            stolen.plan_shard,
            stolen.range.clone(),
            Some(stolen.owner),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;
    use crate::store::MemoryStore;
    use wd_opt::space::GridSpace;

    fn bowl(config: &(u32, u32)) -> f64 {
        let dx = config.0 as f64 - 13.0;
        let dy = config.1 as f64 - 5.0;
        dx * dx + dy * dy
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            max_attempts: 10,
            backoff_base: 2,
            backoff_cap: 12,
            lease_ticks: 3,
        };
        assert_eq!(policy.backoff_ticks(0), 2);
        assert_eq!(policy.backoff_ticks(1), 4);
        assert_eq!(policy.backoff_ticks(2), 8);
        assert_eq!(policy.backoff_ticks(3), 12, "capped");
        assert_eq!(policy.backoff_ticks(200), 12, "no overflow at huge retries");
    }

    #[test]
    fn fault_free_supervision_matches_the_plain_run() {
        let space = GridSpace {
            width: 23,
            height: 17,
        };
        let reference = ShardedCampaign::new(4)
            .run(&space, &bowl, &MemoryStore::new())
            .unwrap();
        let supervised = ShardedCampaign::new(4)
            .run_supervised(
                &space,
                &bowl,
                &MemoryStore::new(),
                &FaultPlan::none(),
                &RetryPolicy::default(),
            )
            .unwrap();
        assert_eq!(supervised.outcome.best_config, reference.best_config);
        assert_eq!(
            supervised.outcome.best_energy.to_bits(),
            reference.best_energy.to_bits()
        );
        assert_eq!(supervised.outcome.best_index, reference.best_index);
        assert_eq!(supervised.outcome.evaluations, 23 * 17);
        assert_eq!(
            supervised.supervision.resilience,
            ResilienceStats {
                attempts: 4,
                ..ResilienceStats::default()
            }
        );
        assert!(supervised.supervision.dead_slots.is_empty());
        assert!(!supervised.supervision.resilience.recovered_from_faults());
    }

    #[test]
    fn every_fault_kind_recovers_to_the_reference_result() {
        let space = GridSpace {
            width: 19,
            height: 11,
        };
        let reference = ShardedCampaign::new(3)
            .run(&space, &bowl, &MemoryStore::new())
            .unwrap();
        for kind in [
            FaultKind::EvalError,
            FaultKind::ShardDeath,
            FaultKind::Stall,
            FaultKind::TornWrite,
        ] {
            let faults = FaultPlan::from_events(vec![FaultEvent {
                slot: 1,
                attempt: 0,
                after_batches: 1,
                kind,
            }]);
            let supervised = ShardedCampaign::new(3)
                .with_batch_size(16)
                .run_supervised(
                    &space,
                    &bowl,
                    &MemoryStore::new(),
                    &faults,
                    &RetryPolicy::default(),
                )
                .unwrap();
            assert_eq!(
                supervised.outcome.best_config, reference.best_config,
                "{kind:?}"
            );
            assert_eq!(
                supervised.outcome.best_energy.to_bits(),
                reference.best_energy.to_bits(),
                "{kind:?}"
            );
            assert_eq!(supervised.outcome.best_index, reference.best_index);
            let resilience = supervised.supervision.resilience;
            assert_eq!(resilience.retries, 1, "{kind:?}");
            assert_eq!(
                resilience.lease_expiries,
                usize::from(kind == FaultKind::Stall),
                "{kind:?}"
            );
            assert_eq!(
                supervised
                    .supervision
                    .attempts
                    .iter()
                    .filter(|attempt| attempt.failure.is_some())
                    .count(),
                1
            );
        }
    }

    #[test]
    fn dead_shards_are_work_stolen_and_the_result_still_matches() {
        let space = GridSpace {
            width: 21,
            height: 13,
        };
        let reference = ShardedCampaign::new(4)
            .run(&space, &bowl, &MemoryStore::new())
            .unwrap();
        // slot 2 dies on every attempt it is allowed: it must be declared dead and
        // its range completed by someone else
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let faults = FaultPlan::from_events(
            (0..2)
                .map(|attempt| FaultEvent {
                    slot: 2,
                    attempt,
                    after_batches: 0,
                    kind: FaultKind::ShardDeath,
                })
                .collect(),
        );
        let supervised = ShardedCampaign::new(4)
            .with_batch_size(8)
            .run_supervised(&space, &bowl, &MemoryStore::new(), &faults, &policy)
            .unwrap();
        assert_eq!(supervised.outcome.best_config, reference.best_config);
        assert_eq!(
            supervised.outcome.best_energy.to_bits(),
            reference.best_energy.to_bits()
        );
        assert_eq!(supervised.supervision.dead_slots, vec![2]);
        assert!(supervised.supervision.resilience.steals >= 1);
        // the stolen range was still completed exactly once per plan shard
        assert_eq!(supervised.outcome.shards.len(), 4);
        let mut next = 0usize;
        for report in &supervised.outcome.shards {
            assert_eq!(report.range.start, next);
            next = report.range.end;
        }
        assert_eq!(next, 21 * 13);
    }

    #[test]
    fn supervision_report_is_deterministically_ordered() {
        let space = GridSpace {
            width: 12,
            height: 12,
        };
        let faults = FaultPlan::random(99, 3, 2, 2);
        let run = || {
            ShardedCampaign::new(3)
                .with_batch_size(10)
                .run_supervised(
                    &space,
                    &bowl,
                    &MemoryStore::new(),
                    &faults,
                    &RetryPolicy::default(),
                )
                .map(|supervised| supervised.supervision.attempts)
        };
        let attempts = run().unwrap();
        for window in attempts.windows(2) {
            assert!(
                (window[0].slot, window[0].attempt) < (window[1].slot, window[1].attempt),
                "attempts are sorted and unique per (slot, attempt)"
            );
        }
    }
}
