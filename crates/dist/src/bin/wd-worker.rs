//! The worker half of `wd_dist::proc`: one process, one shard attempt.
//!
//! Spawned by [`wd_dist::proc::ProcCampaign`] with `--work-dir --slot
//! --generation --start --end`; all behaviour (fencing, heartbeats, segment
//! appends, injected faults) lives in [`wd_dist::proc::worker_main`] so the
//! library tests exercise the exact code this binary runs.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(wd_dist::proc::worker_main(&args));
}
