//! Poison-recovering lock helpers shared by the store and the supervisor.
//!
//! Poisoning only means another thread panicked while holding the guard; every
//! critical section in this crate leaves its data consistent at every await-free
//! step (whole-map inserts, whole-batch appends, single queue pops), so the
//! protected state is still usable — and a panic cascade here would turn one failed
//! shard into a failed campaign.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquire a read guard, recovering from poisoning instead of panicking.
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a write guard, recovering from poisoning (see [`read_lock`]).
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a mutex guard, recovering from poisoning (see [`read_lock`]).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}
