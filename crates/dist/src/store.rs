//! Persistent result stores: where a campaign's `(configuration, energy)` pairs live.
//!
//! A [`ResultStore`] is the durability layer of the campaign coordinator: every energy
//! an [`wd_opt::Objective`] produces is recorded, and every shard consults the store
//! before evaluating, so a killed or repeated campaign resumes with zero
//! re-evaluations.  Two implementations are provided:
//!
//! * [`MemoryStore`] — a process-local map, the warm-cache of a single run (and the
//!   cheap store for tests and in-process multi-"node" simulations);
//! * [`JsonlStore`] — an append-only JSON-lines file.  Records carry the exact IEEE-754
//!   bit pattern of every energy, so a reloaded store reproduces results *bit for bit*;
//!   the loader skips truncated or foreign lines, so a campaign killed mid-write loses
//!   at most the record being written.
//!
//! Stores also accumulate the merged [`CacheStats`] of the campaigns that ran against
//! them ([`ResultStore::record_stats`]), giving an audit trail of how much work each
//! run actually performed.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::hash::Hash;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use wd_obs::Recorder;
use wd_opt::CacheStats;

use crate::key::ConfigKey;

/// Acquire a read guard, recovering from poisoning instead of panicking.
///
/// Poisoning only means another thread panicked while holding the guard; every
/// critical section in this file leaves its data consistent at every await-free step
/// (whole-map inserts, whole-batch appends), so the store is still usable — and a
/// panic cascade here would turn one failed shard into a failed campaign with a
/// half-written log.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a write guard, recovering from poisoning (see [`read_lock`]).
fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a mutex guard, recovering from poisoning (see [`read_lock`]).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A concurrent store of evaluated `(configuration, energy)` pairs.
///
/// All methods take `&self`: stores are shared by the shards of a running campaign and
/// synchronise internally.  Implementations must return exactly the recorded energy
/// from [`ResultStore::lookup`] (bit-for-bit — resumed campaigns must reproduce the
/// original merge result).
pub trait ResultStore<C> {
    /// The recorded energy of `config`, if present.
    fn lookup(&self, config: &C) -> Option<f64>;

    /// Batched lookup, one slot per configuration in order.
    fn lookup_batch(&self, configs: &[C]) -> Vec<Option<f64>> {
        configs.iter().map(|config| self.lookup(config)).collect()
    }

    /// Record one evaluated configuration.
    fn record(&self, config: &C, energy: f64);

    /// Record a batch of evaluated configurations (`energies[i]` belongs to
    /// `configs[i]`).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    fn record_batch(&self, configs: &[C], energies: &[f64]) {
        assert_eq!(configs.len(), energies.len());
        for (config, &energy) in configs.iter().zip(energies) {
            self.record(config, energy);
        }
    }

    /// Fold a campaign's merged hit/miss counters into the store's running total.
    fn record_stats(&self, stats: CacheStats);

    /// Accumulated counters over every campaign recorded so far (for a persistent
    /// store: including previous processes).
    fn recorded_stats(&self) -> CacheStats;

    /// Number of distinct configurations stored.
    fn len(&self) -> usize;

    /// Whether the store holds no results yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush buffered records to durable storage, reporting any write error that
    /// occurred since the last flush.  A no-op for purely in-memory stores.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// An in-memory [`ResultStore`]: the durability of a warm cache, the API of the
/// persistent stores.
#[derive(Debug, Default)]
pub struct MemoryStore<C> {
    map: RwLock<HashMap<C, f64>>,
    stats: Mutex<CacheStats>,
}

impl<C> MemoryStore<C> {
    /// An empty store.
    pub fn new() -> Self {
        MemoryStore {
            map: RwLock::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
        }
    }
}

impl<C> ResultStore<C> for MemoryStore<C>
where
    C: Eq + Hash + Clone,
{
    fn lookup(&self, config: &C) -> Option<f64> {
        read_lock(&self.map).get(config).copied()
    }

    fn lookup_batch(&self, configs: &[C]) -> Vec<Option<f64>> {
        let map = read_lock(&self.map);
        configs
            .iter()
            .map(|config| map.get(config).copied())
            .collect()
    }

    fn record(&self, config: &C, energy: f64) {
        write_lock(&self.map).insert(config.clone(), energy);
    }

    fn record_batch(&self, configs: &[C], energies: &[f64]) {
        assert_eq!(configs.len(), energies.len());
        let mut map = write_lock(&self.map);
        for (config, &energy) in configs.iter().zip(energies) {
            map.insert(config.clone(), energy);
        }
    }

    fn record_stats(&self, stats: CacheStats) {
        *lock(&self.stats) += stats;
    }

    fn recorded_stats(&self) -> CacheStats {
        *lock(&self.stats)
    }

    fn len(&self) -> usize {
        read_lock(&self.map).len()
    }
}

/// An append-only on-disk [`ResultStore`], one JSON object per line.
///
/// Three record kinds exist:
///
/// ```text
/// {"context":"em|human-genome|3170000000"}
/// {"config":"<key>","energy":1.234,"bits":"3ff3be76c8b43958"}
/// {"stats":{"hits":19926,"misses":0}}
/// ```
///
/// `bits` is the hexadecimal IEEE-754 bit pattern of the energy and is authoritative
/// on load (the decimal `energy` field is for human eyes), so round trips are exact.
/// Configurations are keyed by their [`ConfigKey`] encoding.  The loader tolerates a
/// truncated final line (the footprint of a killed campaign) and foreign lines by
/// skipping them; [`JsonlStore::skipped_lines`] reports how many were dropped.
///
/// **A store is bound to one objective.**  Records carry no energy provenance, so
/// feeding a store populated under one objective (workload, platform, evaluator) to a
/// campaign over a different one would silently return the wrong energies as "warm"
/// hits.  [`JsonlStore::open_with_context`] guards against this: it stamps a caller
/// chosen context string into the file and refuses to open a store stamped with a
/// different one.  The plain [`JsonlStore::open`] performs no such check.
///
/// Record appends are flushed to the OS per call ([`ResultStore::record`] /
/// [`ResultStore::record_batch`]), so a killed campaign loses at most the batch being
/// written; [`ResultStore::flush`] (called by the campaign coordinator at the end of
/// every run) surfaces the first write error encountered since the previous flush.
#[derive(Debug)]
pub struct JsonlStore<C> {
    path: PathBuf,
    map: RwLock<HashMap<String, f64>>,
    writer: Mutex<BufWriter<File>>,
    stats: Mutex<CacheStats>,
    write_error: Mutex<Option<io::Error>>,
    skipped_lines: usize,
    context: Option<String>,
    schema: Option<String>,
    io: IoCounters,
    _config: PhantomData<fn(&C) -> C>,
}

#[derive(Debug, Default)]
struct IoCounters {
    loaded_records: u64,
    loaded_bytes: u64,
    appended_records: AtomicU64,
    appended_bytes: AtomicU64,
    compactions: AtomicU64,
    compacted_dropped: AtomicU64,
}

/// A point-in-time copy of one [`JsonlStore`]'s I/O counters — how much this store
/// instance read at load time and has written (and compacted away) since.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreIoStats {
    /// Result records loaded from the file when this instance was opened.
    pub loaded_records: u64,
    /// Bytes of the file consumed at load time.
    pub loaded_bytes: u64,
    /// Malformed/truncated lines skipped at load time.
    pub skipped_lines: u64,
    /// Lines durably appended by this instance (results, stats, stamps).
    pub appended_records: u64,
    /// Bytes durably appended by this instance (including newlines).
    pub appended_bytes: u64,
    /// Number of [`JsonlStore::compact`] passes this instance ran.
    pub compactions: u64,
    /// Duplicate records dropped across those compaction passes.
    pub compacted_dropped: u64,
}

/// The schema version stamped into the header line of freshly created (and
/// compacted) stores, e.g. `{"schema":"wd-dist-store/v2"}`.  Stores written before
/// the header existed load fine (their version reads as `None`); future migrations
/// key off this stamp to detect old layouts.
pub const STORE_SCHEMA_VERSION: &str = "wd-dist-store/v2";

/// What one [`JsonlStore::compact`] pass did: how many result records the rewritten
/// log kept versus dropped as duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Result records in the log before compaction (including duplicates).
    pub records_before: usize,
    /// Distinct keys kept (one record each) after compaction.
    pub records_after: usize,
}

impl CompactionReport {
    /// Number of duplicate records the rewrite dropped.
    pub fn dropped(&self) -> usize {
        self.records_before - self.records_after
    }
}

enum Record {
    Result(String, f64),
    Stats(CacheStats),
    Context(String),
    Schema(String),
}

/// Extract the value of a `"name":"<value>"` string field.
fn json_str_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pattern = format!("\"{name}\":\"");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extract the value of a `"name":<digits>` unsigned integer field.
fn json_uint_field(line: &str, name: &str) -> Option<u64> {
    let pattern = format!("\"{name}\":");
    let start = line.find(&pattern)? + pattern.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn parse_line(line: &str) -> Option<Record> {
    if let Some(schema) = json_str_field(line, "schema") {
        return Some(Record::Schema(schema.to_string()));
    }
    if let Some(context) = json_str_field(line, "context") {
        return Some(Record::Context(context.to_string()));
    }
    if let Some(key) = json_str_field(line, "config") {
        // the bit pattern is authoritative; fall back to the decimal field for
        // hand-written lines
        let energy = match json_str_field(line, "bits") {
            Some(hex) => f64::from_bits(u64::from_str_radix(hex, 16).ok()?),
            None => {
                let pattern = "\"energy\":";
                let start = line.find(pattern)? + pattern.len();
                let rest = &line[start..];
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                rest[..end].trim().parse().ok()?
            }
        };
        return Some(Record::Result(key.to_string(), energy));
    }
    if line.contains("\"stats\"") {
        return Some(Record::Stats(CacheStats {
            hits: json_uint_field(line, "hits")? as usize,
            misses: json_uint_field(line, "misses")? as usize,
        }));
    }
    None
}

impl<C: ConfigKey> JsonlStore<C> {
    /// Open (or create) the store at `path`, loading every intact record.
    ///
    /// No context check is performed — prefer [`JsonlStore::open_with_context`] for
    /// stores that outlive one process.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut map = HashMap::new();
        let mut stats = CacheStats::default();
        let mut skipped = 0usize;
        let mut context = None;
        let mut schema = None;
        let mut saw_lines = false;
        let mut loaded_records = 0u64;
        let mut loaded_bytes = 0u64;
        if path.exists() {
            for line in BufReader::new(File::open(&path)?).split(b'\n') {
                let line = String::from_utf8(line?).unwrap_or_default();
                loaded_bytes += line.len() as u64 + 1;
                if line.trim().is_empty() {
                    continue;
                }
                saw_lines = true;
                match parse_line(&line) {
                    Some(Record::Result(key, energy)) => {
                        loaded_records += 1;
                        map.insert(key, energy);
                    }
                    Some(Record::Stats(loaded)) => stats += loaded,
                    Some(Record::Context(loaded)) => context = Some(loaded),
                    Some(Record::Schema(loaded)) => schema = Some(loaded),
                    None => skipped += 1,
                }
            }
        }
        let writer = BufWriter::new(OpenOptions::new().create(true).append(true).open(&path)?);
        let store = JsonlStore {
            path,
            map: RwLock::new(map),
            writer: Mutex::new(writer),
            stats: Mutex::new(stats),
            write_error: Mutex::new(None),
            skipped_lines: skipped,
            context,
            schema,
            io: IoCounters {
                loaded_records,
                loaded_bytes,
                ..IoCounters::default()
            },
            _config: PhantomData,
        };
        if !saw_lines {
            // stamp fresh stores with the current schema version so future readers
            // can detect (and migrate) old layouts; pre-header stores keep `None`
            store.append(&format!("{{\"schema\":\"{STORE_SCHEMA_VERSION}\"}}"));
            store.flush()?;
            return Ok(JsonlStore {
                schema: Some(STORE_SCHEMA_VERSION.to_string()),
                ..store
            });
        }
        Ok(store)
    }

    /// Open (or create) the store at `path` for one evaluation context.
    ///
    /// `context` should identify everything the energies depend on — workload,
    /// platform, evaluation mode (e.g. `"em|human-genome|3170000000"`) — and must be
    /// JSON-string-safe (no `"`, `\` or control characters).  A fresh store is
    /// stamped with the context; re-opening checks the stamp and fails with
    /// [`io::ErrorKind::InvalidData`] when it differs, so a campaign can never
    /// silently consume energies recorded under a different objective.  Stores with
    /// existing records but no stamp (created via [`JsonlStore::open`]) are rejected
    /// too — their provenance is unknown.
    pub fn open_with_context(path: impl AsRef<Path>, context: &str) -> io::Result<Self> {
        assert!(
            !context.contains(['"', '\\', '\n', '\r']),
            "store contexts must be JSON-string-safe: {context:?}"
        );
        let store = Self::open(path)?;
        match store.context.as_deref() {
            Some(existing) if existing == context => Ok(store),
            Some(existing) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "result store {} was recorded under context {existing:?}, \
                     refusing to reuse it for context {context:?}",
                    store.path.display()
                ),
            )),
            None if store.is_empty() => {
                store.append(&format!("{{\"context\":\"{context}\"}}"));
                store.flush()?;
                Ok(JsonlStore {
                    context: Some(context.to_string()),
                    ..store
                })
            }
            None => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "result store {} holds records of unknown provenance (no context \
                     stamp); refusing to reuse it for context {context:?}",
                    store.path.display()
                ),
            )),
        }
    }

    /// The file backing this store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The context this store was stamped with, when present.
    pub fn context(&self) -> Option<&str> {
        self.context.as_deref()
    }

    /// Number of malformed/truncated lines skipped while loading.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// The schema version this store's file was stamped with *when it was loaded*
    /// ([`STORE_SCHEMA_VERSION`] for stores created by this code; `None` for stores
    /// written before the header existed).  [`JsonlStore::compact`] stamps the
    /// current version into the file; reopen to observe it on an old store.
    pub fn schema_version(&self) -> Option<&str> {
        self.schema.as_deref()
    }

    /// Rewrite the append-only log keeping **one record per key** — the lowest energy
    /// wins, ties keep the earliest record — plus a fresh [`STORE_SCHEMA_VERSION`]
    /// header, the context stamp (when present) and a single merged stats line.
    ///
    /// Overlapping campaigns against one store append duplicate records without
    /// bound (the coordinator records every evaluated batch); compaction bounds the
    /// file again.  Keys keep their first-occurrence order, so compacting is
    /// deterministic.  The rewrite goes through a temporary sibling file that is
    /// atomically renamed over the log, and the in-memory map is reloaded from the
    /// kept records, so concurrent appends block (the writer is locked for the
    /// duration) but are never lost.
    ///
    /// Note the merge rule: the in-memory map of a *live* store is last-write-wins,
    /// which for the deterministic objectives the coordinator runs is
    /// indistinguishable (duplicate records carry identical energies).  Compaction
    /// applies the coordinator's lowest-energy/earliest rule, so hand-written logs
    /// with conflicting duplicates resolve to the merged best.
    pub fn compact(&self) -> io::Result<CompactionReport> {
        let mut writer = lock(&self.writer);
        writer.flush()?;

        // re-read the log: the in-memory map holds only the last write per key, the
        // merge rule needs every duplicate in file order
        let mut order: Vec<String> = Vec::new();
        let mut merged: HashMap<String, f64> = HashMap::new();
        let mut stats = CacheStats::default();
        let mut records_before = 0usize;
        for line in BufReader::new(File::open(&self.path)?).split(b'\n') {
            let line = String::from_utf8(line?).unwrap_or_default();
            if line.trim().is_empty() {
                continue;
            }
            match parse_line(&line) {
                Some(Record::Result(key, energy)) => {
                    records_before += 1;
                    match merged.get_mut(&key) {
                        None => {
                            order.push(key.clone());
                            merged.insert(key, energy);
                        }
                        // strictly lower replaces; an equal energy keeps the earliest
                        Some(best) => {
                            if energy.total_cmp(best).is_lt() {
                                *best = energy;
                            }
                        }
                    }
                }
                Some(Record::Stats(loaded)) => stats += loaded,
                // context/schema are re-stamped below; foreign lines are dropped
                Some(Record::Context(_)) | Some(Record::Schema(_)) | None => {}
            }
        }

        // write the compacted log next to the original, then rename over it
        let tmp_path = self.path.with_extension("compact-tmp");
        {
            let mut tmp = BufWriter::new(File::create(&tmp_path)?);
            writeln!(tmp, "{{\"schema\":\"{STORE_SCHEMA_VERSION}\"}}")?;
            if let Some(context) = &self.context {
                writeln!(tmp, "{{\"context\":\"{context}\"}}")?;
            }
            for key in &order {
                writeln!(tmp, "{}", Self::result_line(key, merged[key]))?;
            }
            writeln!(
                tmp,
                "{{\"stats\":{{\"hits\":{},\"misses\":{}}}}}",
                stats.hits, stats.misses
            )?;
            tmp.flush()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;

        // swap in a fresh append handle (the old one points at the replaced inode)
        *writer = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);

        let report = CompactionReport {
            records_before,
            records_after: order.len(),
        };
        self.io.compactions.fetch_add(1, Ordering::Relaxed);
        self.io
            .compacted_dropped
            .fetch_add(report.dropped() as u64, Ordering::Relaxed);
        *write_lock(&self.map) = merged;
        *lock(&self.stats) = stats;
        Ok(report)
    }

    /// Decode every stored record back into configurations (records whose key no
    /// longer decodes — e.g. written by an older schema — are skipped).
    pub fn entries(&self) -> Vec<(C, f64)> {
        read_lock(&self.map)
            .iter()
            .filter_map(|(key, &energy)| Some((C::decode_key(key)?, energy)))
            .collect()
    }

    /// This instance's I/O counters: records/bytes read at load time and durably
    /// appended (or compacted away) since.
    pub fn io_stats(&self) -> StoreIoStats {
        StoreIoStats {
            loaded_records: self.io.loaded_records,
            loaded_bytes: self.io.loaded_bytes,
            skipped_lines: self.skipped_lines as u64,
            appended_records: self.io.appended_records.load(Ordering::Relaxed),
            appended_bytes: self.io.appended_bytes.load(Ordering::Relaxed),
            compactions: self.io.compactions.load(Ordering::Relaxed),
            compacted_dropped: self.io.compacted_dropped.load(Ordering::Relaxed),
        }
    }

    /// Publish [`JsonlStore::io_stats`] to `recorder` as counters named
    /// `{scope}.store.*` (e.g. `campaign.store.appended_records`).  Call once at the
    /// end of a run — counters are cumulative, so publishing twice double-counts.
    pub fn publish_io(&self, recorder: &dyn Recorder, scope: &str) {
        if !recorder.enabled() {
            return;
        }
        let io = self.io_stats();
        for (name, value) in [
            ("loaded_records", io.loaded_records),
            ("loaded_bytes", io.loaded_bytes),
            ("skipped_lines", io.skipped_lines),
            ("appended_records", io.appended_records),
            ("appended_bytes", io.appended_bytes),
            ("compactions", io.compactions),
            ("compacted_dropped", io.compacted_dropped),
        ] {
            recorder.counter(&format!("{scope}.store.{name}"), value);
        }
    }

    /// Append `line`, flush it to the OS so a kill cannot lose it, and remember the
    /// first write error for the next `flush`.
    fn append(&self, line: &str) {
        let mut writer = lock(&self.writer);
        if let Err(error) = writeln!(writer, "{line}").and_then(|()| writer.flush()) {
            lock(&self.write_error).get_or_insert(error);
        } else {
            self.io.appended_records.fetch_add(1, Ordering::Relaxed);
            self.io
                .appended_bytes
                .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        }
    }

    fn result_line(key: &str, energy: f64) -> String {
        debug_assert!(
            !key.contains(['"', '\\', '\n', '\r']),
            "ConfigKey encodings must be JSON-string-safe: {key:?}"
        );
        format!(
            "{{\"config\":\"{key}\",\"energy\":{energy},\"bits\":\"{bits:016x}\"}}",
            bits = energy.to_bits()
        )
    }
}

impl<C: ConfigKey> ResultStore<C> for JsonlStore<C> {
    fn lookup(&self, config: &C) -> Option<f64> {
        read_lock(&self.map).get(&config.encode_key()).copied()
    }

    fn lookup_batch(&self, configs: &[C]) -> Vec<Option<f64>> {
        let map = read_lock(&self.map);
        configs
            .iter()
            .map(|config| map.get(&config.encode_key()).copied())
            .collect()
    }

    fn record(&self, config: &C, energy: f64) {
        let key = config.encode_key();
        self.append(&Self::result_line(&key, energy));
        write_lock(&self.map).insert(key, energy);
    }

    fn record_batch(&self, configs: &[C], energies: &[f64]) {
        assert_eq!(configs.len(), energies.len());
        let keys: Vec<String> = configs.iter().map(ConfigKey::encode_key).collect();
        {
            // one writer lock for the whole batch keeps shard appends contiguous; the
            // trailing flush bounds what a kill can lose to this batch
            let mut writer = lock(&self.writer);
            let mut wrote = Ok(());
            for (key, &energy) in keys.iter().zip(energies) {
                let line = Self::result_line(key, energy);
                wrote = writeln!(writer, "{line}");
                if wrote.is_err() {
                    break;
                }
                self.io.appended_records.fetch_add(1, Ordering::Relaxed);
                self.io
                    .appended_bytes
                    .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
            }
            if let Err(error) = wrote.and_then(|()| writer.flush()) {
                lock(&self.write_error).get_or_insert(error);
            }
        }
        let mut map = write_lock(&self.map);
        for (key, &energy) in keys.into_iter().zip(energies) {
            map.insert(key, energy);
        }
    }

    fn record_stats(&self, stats: CacheStats) {
        self.append(&format!(
            "{{\"stats\":{{\"hits\":{},\"misses\":{}}}}}",
            stats.hits, stats.misses
        ));
        *lock(&self.stats) += stats;
    }

    fn recorded_stats(&self) -> CacheStats {
        *lock(&self.stats)
    }

    fn len(&self) -> usize {
        read_lock(&self.map).len()
    }

    fn flush(&self) -> io::Result<()> {
        if let Some(error) = lock(&self.write_error).take() {
            return Err(error);
        }
        lock(&self.writer).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "wd_dist-store-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn memory_store_round_trips_and_accumulates_stats() {
        let store: MemoryStore<(u32, u32)> = MemoryStore::new();
        assert!(store.is_empty());
        assert_eq!(store.lookup(&(1, 2)), None);
        store.record(&(1, 2), 0.5);
        store.record_batch(&[(3, 4), (5, 6)], &[1.5, 2.5]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.lookup(&(3, 4)), Some(1.5));
        assert_eq!(store.lookup_batch(&[(1, 2), (9, 9)]), vec![Some(0.5), None]);
        store.record_stats(CacheStats { hits: 2, misses: 3 });
        store.record_stats(CacheStats { hits: 1, misses: 0 });
        assert_eq!(store.recorded_stats(), CacheStats { hits: 3, misses: 3 });
        store.flush().unwrap();
    }

    #[test]
    fn jsonl_store_persists_exact_bits_across_instances() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        // energies chosen to stress decimal printing: a subnormal-ish value, a value
        // with no short decimal representation, and an integer
        let pairs = [((13u32, 5u32), 0.1 + 0.2), ((0, 0), 1e-300), ((7, 7), 42.0)];
        {
            let store: JsonlStore<(u32, u32)> = JsonlStore::open(&path).unwrap();
            for (config, energy) in pairs {
                store.record(&config, energy);
            }
            store.record_stats(CacheStats { hits: 0, misses: 3 });
            store.flush().unwrap();
        }
        {
            let store: JsonlStore<(u32, u32)> = JsonlStore::open(&path).unwrap();
            assert_eq!(store.len(), 3);
            assert_eq!(store.skipped_lines(), 0);
            for (config, energy) in pairs {
                assert_eq!(store.lookup(&config).unwrap().to_bits(), energy.to_bits());
            }
            assert_eq!(store.recorded_stats(), CacheStats { hits: 0, misses: 3 });
            let mut entries = store.entries();
            entries.sort_by_key(|(config, _)| *config);
            assert_eq!(entries.len(), 3);
            assert_eq!(entries[2].0, (13, 5));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn jsonl_store_skips_truncated_and_foreign_lines() {
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            store.record(&1, 1.0);
            store.record(&2, 2.0);
            store.flush().unwrap();
        }
        // simulate a campaign killed mid-write: append garbage and a cut-off record
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("not json at all\n");
        contents.push_str("{\"config\":\"3\",\"ener");
        std::fs::write(&path, contents).unwrap();

        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.skipped_lines(), 2);
        assert_eq!(store.lookup(&1), Some(1.0));
        assert_eq!(store.lookup(&3), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn context_stamp_guards_against_cross_objective_reuse() {
        let path = temp_path("context");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> =
                JsonlStore::open_with_context(&path, "em|human|3170000000").unwrap();
            assert_eq!(store.context(), Some("em|human|3170000000"));
            store.record(&1, 1.0);
            store.flush().unwrap();
        }
        // the same context re-opens and resumes
        {
            let store: JsonlStore<u32> =
                JsonlStore::open_with_context(&path, "em|human|3170000000").unwrap();
            assert_eq!(store.len(), 1);
            assert_eq!(store.skipped_lines(), 0);
        }
        // a different objective is refused instead of silently served stale energies
        let err = JsonlStore::<u32>::open_with_context(&path, "eml|cat|2430000000").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();

        // records of unknown provenance (stampless store) are refused too
        let path = temp_path("context-unstamped");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            store.record(&1, 1.0);
            store.flush().unwrap();
        }
        assert!(JsonlStore::<u32>::open_with_context(&path, "any").is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn records_are_durable_before_an_explicit_flush() {
        // a killed campaign must lose at most the batch being written: appends are
        // flushed to the OS per record/batch, not parked in the process buffer
        let path = temp_path("durability");
        let _ = std::fs::remove_file(&path);
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        store.record(&1, 1.0);
        store.record_batch(&[2, 3], &[2.0, 3.0]);
        // read the file out-of-band while the store (and its buffer) is still alive
        // (3 records + the schema header of a fresh store)
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 4);
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn jsonl_store_later_records_override_earlier_ones() {
        let path = temp_path("override");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            store.record(&9, 1.0);
            store.record(&9, 5.0);
            store.flush().unwrap();
            assert_eq!(store.lookup(&9), Some(5.0));
        }
        // append order is preserved on disk, so the reloaded map keeps the last write
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup(&9), Some(5.0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_stores_are_stamped_with_the_schema_version() {
        let path = temp_path("schema");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            assert_eq!(store.schema_version(), Some(STORE_SCHEMA_VERSION));
            store.record(&1, 1.0);
            store.flush().unwrap();
        }
        // the header is a recognised record kind, not a skipped foreign line
        let reopened: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(reopened.schema_version(), Some(STORE_SCHEMA_VERSION));
        assert_eq!(reopened.skipped_lines(), 0);
        assert_eq!(reopened.len(), 1);
        std::fs::remove_file(&path).unwrap();

        // pre-header stores load fine and report no version
        let old = temp_path("schema-old");
        std::fs::write(&old, "{\"config\":\"7\",\"energy\":1.5}\n").unwrap();
        let store: JsonlStore<u32> = JsonlStore::open(&old).unwrap();
        assert_eq!(store.schema_version(), None);
        assert_eq!(store.lookup(&7), Some(1.5));
        std::fs::remove_file(&old).unwrap();
    }

    #[test]
    fn compaction_keeps_one_record_per_key_lowest_energy_wins() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let store: JsonlStore<u32> =
            JsonlStore::open_with_context(&path, "em|human|compact-test").unwrap();
        // overlapping campaigns: key 1 improves, key 2 worsens, key 3 ties, key 4 once
        store.record(&1, 5.0);
        store.record(&2, 1.0);
        store.record(&1, 3.0);
        store.record(&2, 2.0);
        store.record(&3, 7.0);
        store.record(&3, 7.0);
        store.record(&4, 4.0);
        store.record_stats(CacheStats { hits: 5, misses: 7 });
        store.record_stats(CacheStats { hits: 1, misses: 0 });
        store.flush().unwrap();

        let report = store.compact().unwrap();
        assert_eq!(
            report,
            CompactionReport {
                records_before: 7,
                records_after: 4
            }
        );
        assert_eq!(report.dropped(), 3);

        // the live map now follows the merge rule (lowest wins)
        assert_eq!(store.lookup(&1), Some(3.0));
        assert_eq!(store.lookup(&2), Some(1.0));
        assert_eq!(store.lookup(&3), Some(7.0));
        assert_eq!(store.lookup(&4), Some(4.0));
        assert_eq!(store.len(), 4);
        assert_eq!(store.recorded_stats(), CacheStats { hits: 6, misses: 7 });

        // appends after compaction land in the rewritten file
        store.record(&5, 9.0);
        store.flush().unwrap();

        // a reopened store sees the compacted log: header + context + 5 records +
        // stats, nothing skipped, context intact
        let reopened: JsonlStore<u32> =
            JsonlStore::open_with_context(&path, "em|human|compact-test").unwrap();
        assert_eq!(reopened.schema_version(), Some(STORE_SCHEMA_VERSION));
        assert_eq!(reopened.skipped_lines(), 0);
        assert_eq!(reopened.len(), 5);
        assert_eq!(reopened.lookup(&1), Some(3.0));
        assert_eq!(reopened.lookup(&5), Some(9.0));
        assert_eq!(reopened.recorded_stats(), CacheStats { hits: 6, misses: 7 });
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 1 + 1 + 4 + 1 + 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_preserves_exact_bits_and_is_idempotent() {
        let path = temp_path("compact-bits");
        let _ = std::fs::remove_file(&path);
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        let awkward = 0.1 + 0.2;
        store.record(&11, awkward);
        store.record(&11, awkward + 1.0);
        store.record(&12, 1e-300);
        store.compact().unwrap();
        assert_eq!(store.lookup(&11).unwrap().to_bits(), awkward.to_bits());

        let again = store.compact().unwrap();
        assert_eq!(again.records_before, again.records_after);
        assert_eq!(again.dropped(), 0);

        let reopened: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(reopened.lookup(&11).unwrap().to_bits(), awkward.to_bits());
        assert_eq!(reopened.lookup(&12).unwrap().to_bits(), 1e-300f64.to_bits());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn io_counters_track_loads_appends_and_compactions() {
        let path = temp_path("io-counters");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            let io = store.io_stats();
            assert_eq!(io.loaded_records, 0);
            // the fresh-store schema stamp is already an append
            assert_eq!(io.appended_records, 1);
            assert!(io.appended_bytes > 0);

            store.record(&1, 1.0);
            store.record_batch(&[2, 3], &[2.0, 2.0]);
            store.record(&2, 5.0); // duplicate key, dropped by compaction
            store.record_stats(CacheStats { hits: 1, misses: 4 });
            store.flush().unwrap();
            let io = store.io_stats();
            assert_eq!(io.appended_records, 1 + 4 + 1);
            let on_disk = std::fs::metadata(&path).unwrap().len();
            assert_eq!(io.appended_bytes, on_disk);

            let report = store.compact().unwrap();
            assert_eq!(report.dropped(), 1);
            let io = store.io_stats();
            assert_eq!(io.compactions, 1);
            assert_eq!(io.compacted_dropped, 1);
        }
        // a reopened store counts what it loaded (3 results) byte for byte
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        let io = store.io_stats();
        assert_eq!(io.loaded_records, 3);
        assert_eq!(io.loaded_bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(io.skipped_lines, 0);
        assert_eq!(io.appended_records, 0);

        // counters publish under the requested scope
        let registry = wd_obs::Registry::new();
        store.publish_io(&registry, "campaign");
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counters.get("campaign.store.loaded_records"),
            Some(&3)
        );
        assert_eq!(
            snapshot.counters.get("campaign.store.appended_records"),
            Some(&0)
        );
        // and a disabled recorder costs nothing and records nothing
        store.publish_io(&wd_obs::NoopRecorder, "campaign");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn energy_parsing_falls_back_to_the_decimal_field() {
        let path = temp_path("fallback");
        std::fs::write(&path, "{\"config\":\"4\",\"energy\":2.75}\n").unwrap();
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(store.lookup(&4), Some(2.75));
        assert_eq!(store.skipped_lines(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
