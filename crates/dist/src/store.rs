//! Persistent result stores: where a campaign's `(configuration, energy)` pairs live.
//!
//! A [`ResultStore`] is the durability layer of the campaign coordinator: every energy
//! an [`wd_opt::Objective`] produces is recorded, and every shard consults the store
//! before evaluating, so a killed or repeated campaign resumes with zero
//! re-evaluations.  Two implementations are provided:
//!
//! * [`MemoryStore`] — a process-local map, the warm-cache of a single run (and the
//!   cheap store for tests and in-process multi-"node" simulations);
//! * [`JsonlStore`] — an append-only JSON-lines file.  Records carry the exact IEEE-754
//!   bit pattern of every energy, so a reloaded store reproduces results *bit for bit*;
//!   the loader skips truncated or foreign lines, so a campaign killed mid-write loses
//!   at most the record being written.
//!
//! Stores also accumulate the merged [`CacheStats`] of the campaigns that ran against
//! them ([`ResultStore::record_stats`]), giving an audit trail of how much work each
//! run actually performed.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::hash::Hash;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use wd_obs::Recorder;
use wd_opt::CacheStats;

use crate::key::ConfigKey;
use crate::sync::{lock, read_lock, write_lock};

/// A concurrent store of evaluated `(configuration, energy)` pairs.
///
/// All methods take `&self`: stores are shared by the shards of a running campaign and
/// synchronise internally.  Implementations must return exactly the recorded energy
/// from [`ResultStore::lookup`] (bit-for-bit — resumed campaigns must reproduce the
/// original merge result).
pub trait ResultStore<C> {
    /// The recorded energy of `config`, if present.
    fn lookup(&self, config: &C) -> Option<f64>;

    /// Batched lookup, one slot per configuration in order.
    fn lookup_batch(&self, configs: &[C]) -> Vec<Option<f64>> {
        configs.iter().map(|config| self.lookup(config)).collect()
    }

    /// Record one evaluated configuration.
    fn record(&self, config: &C, energy: f64);

    /// Record a batch of evaluated configurations (`energies[i]` belongs to
    /// `configs[i]`).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    fn record_batch(&self, configs: &[C], energies: &[f64]) {
        assert_eq!(configs.len(), energies.len());
        for (config, &energy) in configs.iter().zip(energies) {
            self.record(config, energy);
        }
    }

    /// Fold a campaign's merged hit/miss counters into the store's running total.
    fn record_stats(&self, stats: CacheStats);

    /// Accumulated counters over every campaign recorded so far (for a persistent
    /// store: including previous processes).
    fn recorded_stats(&self) -> CacheStats;

    /// Number of distinct configurations stored.
    fn len(&self) -> usize;

    /// Whether the store holds no results yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush buffered records to durable storage, reporting any write error that
    /// occurred since the last flush.  A no-op for purely in-memory stores.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }

    /// Fault-injection seam used by the chaos harness ([`crate::fault::FaultyStore`]):
    /// durably append a torn (truncated, unparseable) record line — the footprint a
    /// crash in the middle of a batch append leaves behind.  Recovery passes must
    /// quarantine such lines instead of dropping them silently.  Purely in-memory
    /// stores have nothing durable to tear; the default is a no-op.
    fn inject_torn_write(&self, hint: &str) {
        let _ = hint;
    }
}

/// An in-memory [`ResultStore`]: the durability of a warm cache, the API of the
/// persistent stores.
#[derive(Debug, Default)]
pub struct MemoryStore<C> {
    map: RwLock<HashMap<C, f64>>,
    stats: Mutex<CacheStats>,
}

impl<C> MemoryStore<C> {
    /// An empty store.
    pub fn new() -> Self {
        MemoryStore {
            map: RwLock::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
        }
    }
}

impl<C> ResultStore<C> for MemoryStore<C>
where
    C: Eq + Hash + Clone,
{
    fn lookup(&self, config: &C) -> Option<f64> {
        read_lock(&self.map).get(config).copied()
    }

    fn lookup_batch(&self, configs: &[C]) -> Vec<Option<f64>> {
        let map = read_lock(&self.map);
        configs
            .iter()
            .map(|config| map.get(config).copied())
            .collect()
    }

    fn record(&self, config: &C, energy: f64) {
        write_lock(&self.map).insert(config.clone(), energy);
    }

    fn record_batch(&self, configs: &[C], energies: &[f64]) {
        assert_eq!(configs.len(), energies.len());
        let mut map = write_lock(&self.map);
        for (config, &energy) in configs.iter().zip(energies) {
            map.insert(config.clone(), energy);
        }
    }

    fn record_stats(&self, stats: CacheStats) {
        *lock(&self.stats) += stats;
    }

    fn recorded_stats(&self) -> CacheStats {
        *lock(&self.stats)
    }

    fn len(&self) -> usize {
        read_lock(&self.map).len()
    }
}

/// An append-only on-disk [`ResultStore`], one JSON object per line.
///
/// Three record kinds exist:
///
/// ```text
/// {"context":"em|human-genome|3170000000"}
/// {"config":"<key>","energy":1.234,"bits":"3ff3be76c8b43958"}
/// {"stats":{"hits":19926,"misses":0}}
/// ```
///
/// `bits` is the hexadecimal IEEE-754 bit pattern of the energy and is authoritative
/// on load (the decimal `energy` field is for human eyes), so round trips are exact.
/// Configurations are keyed by their [`ConfigKey`] encoding.  The loader tolerates a
/// truncated final line (the footprint of a killed campaign) and foreign lines by
/// skipping them; [`JsonlStore::skipped_lines`] reports how many were dropped.
///
/// **A store is bound to one objective.**  Records carry no energy provenance, so
/// feeding a store populated under one objective (workload, platform, evaluator) to a
/// campaign over a different one would silently return the wrong energies as "warm"
/// hits.  [`JsonlStore::open_with_context`] guards against this: it stamps a caller
/// chosen context string into the file and refuses to open a store stamped with a
/// different one.  The plain [`JsonlStore::open`] performs no such check.
///
/// Record appends are flushed to the OS per call ([`ResultStore::record`] /
/// [`ResultStore::record_batch`]), so a killed campaign loses at most the batch being
/// written; [`ResultStore::flush`] (called by the campaign coordinator at the end of
/// every run) surfaces the first write error encountered since the previous flush.
///
/// **Single-writer guard.**  A JSONL log has exactly one append stream: interleaved
/// appends from two processes would tear each other's batch boundaries.  Opening a
/// store therefore acquires an advisory `<path>.lock` sentinel (created with
/// `create_new`, carrying the holder's PID and the store generation); a second open
/// of the same live log — from this or any other process — fails loudly with
/// [`io::ErrorKind::WouldBlock`] instead of silently interleaving records.  A lock
/// whose holder process is gone (a `kill -9`'d worker) is stale and is taken over
/// after the staleness check.  The lock is released when the store is dropped;
/// read-only access never needs it (see [`read_result_records`]).
#[derive(Debug)]
pub struct JsonlStore<C> {
    path: PathBuf,
    map: RwLock<HashMap<String, f64>>,
    writer: Mutex<BufWriter<File>>,
    stats: Mutex<CacheStats>,
    write_error: Mutex<Option<io::Error>>,
    skipped_lines: usize,
    corrupt_lines: Vec<String>,
    context: Option<String>,
    schema: Option<String>,
    generation: AtomicU64,
    retain_generations: usize,
    io: IoCounters,
    // held for RAII only: dropping the store removes the `<path>.lock` sentinel
    _lock: StoreLock,
    _config: PhantomData<fn(&C) -> C>,
}

/// The held advisory append lock of one open [`JsonlStore`]: the `<path>.lock`
/// sentinel file, removed when the store is dropped.
#[derive(Debug)]
struct StoreLock {
    path: PathBuf,
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Whether the process `pid` is still alive, for the stale-lock takeover check.
///
/// Probes `/proc/<pid>`; on systems without a procfs the holder is conservatively
/// treated as alive (the lock must then be removed by hand), so a takeover can
/// never race a live writer.
fn process_alive(pid: u64) -> bool {
    if pid == u64::from(std::process::id()) {
        return true;
    }
    let proc_root = Path::new("/proc");
    if !proc_root.is_dir() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

impl StoreLock {
    fn lock_path(store_path: &Path) -> PathBuf {
        PathBuf::from(format!("{}.lock", store_path.display()))
    }

    /// Acquire the advisory single-writer lock for the log at `store_path`.
    ///
    /// The sentinel is created with `create_new` (atomic on every platform), so
    /// exactly one opener wins.  An existing sentinel whose holder PID is dead is
    /// stale — the footprint of a killed writer — and is removed and re-acquired;
    /// an existing sentinel with a live holder fails the open with
    /// [`io::ErrorKind::WouldBlock`].
    fn acquire(store_path: &Path, generation: u64) -> io::Result<StoreLock> {
        let path = Self::lock_path(store_path);
        // two rounds: the first may find (and clear) a stale holder, the second
        // re-attempts the atomic create; losing both means a live contender
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut sentinel) => {
                    sentinel.write_all(
                        format!("{{\"pid\":{},\"gen\":{generation}}}\n", std::process::id())
                            .as_bytes(),
                    )?;
                    sentinel.flush()?;
                    return Ok(StoreLock { path });
                }
                Err(error) if error.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path).unwrap_or_default();
                    match json_uint_field(&holder, "pid") {
                        Some(pid) if process_alive(pid) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "result store {} is already open for append by live \
                                     process {pid} (lock {}); a JSONL log has exactly one \
                                     writer — a second appender would interleave and tear \
                                     batch boundaries",
                                    store_path.display(),
                                    path.display()
                                ),
                            ));
                        }
                        // dead holder or unreadable sentinel: stale, take it over
                        Some(_) | None => {
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Err(error) => return Err(error),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!(
                "result store {} lock contended while clearing a stale sentinel",
                store_path.display()
            ),
        ))
    }
}

/// Load the result records of the log at `path` **read-only**: no append handle, no
/// tail sealing, and no single-writer lock is taken or required.
///
/// This is the view a worker process uses to warm-load a merged store that the
/// coordinator holds open (and locked) for append, and the view the coordinator
/// uses to salvage the segment of a dead worker.  Keys are the raw [`ConfigKey`]
/// encodings; the second element counts malformed/torn lines skipped (a flushed,
/// quiescent log reads back with zero).
pub fn read_result_records(path: &Path) -> io::Result<(HashMap<String, f64>, usize)> {
    let mut map = HashMap::new();
    let mut skipped = 0usize;
    if !path.exists() {
        return Ok((map, skipped));
    }
    for line in BufReader::new(File::open(path)?).split(b'\n') {
        let line = String::from_utf8(line?).unwrap_or_default();
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Some(Record::Result(key, energy)) => {
                map.insert(key, energy);
            }
            Some(_) => {}
            None => skipped += 1,
        }
    }
    Ok((map, skipped))
}

#[derive(Debug, Default)]
struct IoCounters {
    loaded_records: u64,
    loaded_bytes: u64,
    appended_records: AtomicU64,
    appended_bytes: AtomicU64,
    compactions: AtomicU64,
    compacted_dropped: AtomicU64,
}

/// A point-in-time copy of one [`JsonlStore`]'s I/O counters — how much this store
/// instance read at load time and has written (and compacted away) since.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreIoStats {
    /// Result records loaded from the file when this instance was opened.
    pub loaded_records: u64,
    /// Bytes of the file consumed at load time.
    pub loaded_bytes: u64,
    /// Malformed/truncated lines skipped at load time.
    pub skipped_lines: u64,
    /// Lines durably appended by this instance (results, stats, stamps).
    pub appended_records: u64,
    /// Bytes durably appended by this instance (including newlines).
    pub appended_bytes: u64,
    /// Number of [`JsonlStore::compact`] passes this instance ran.
    pub compactions: u64,
    /// Duplicate records dropped across those compaction passes.
    pub compacted_dropped: u64,
}

/// The schema version stamped into the header line of freshly created (and
/// compacted) stores, e.g. `{"schema":"wd-dist-store/v2"}`.  Stores written before
/// the header existed load fine (their version reads as `None`); future migrations
/// key off this stamp to detect old layouts.
pub const STORE_SCHEMA_VERSION: &str = "wd-dist-store/v2";

/// Default number of `.gen-N` rollback snapshots a store retains (the most recent
/// K generations; older snapshots are pruned after each [`JsonlStore::compact`]
/// pass).  Long-lived stores compact on every recovery and periodically under
/// overlapping campaigns, so without a cap snapshots accumulate one full log copy
/// per compaction without bound.  Override per store with
/// [`JsonlStore::with_generation_retention`].
pub const DEFAULT_RETAINED_GENERATIONS: usize = 4;

/// What one [`JsonlStore::compact`] pass did: how many result records the rewritten
/// log kept versus dropped as duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Result records in the log before compaction (including duplicates).
    pub records_before: usize,
    /// Distinct keys kept (one record each) after compaction.
    pub records_after: usize,
}

impl CompactionReport {
    /// Number of duplicate records the rewrite dropped.
    pub fn dropped(&self) -> usize {
        self.records_before - self.records_after
    }
}

/// What [`JsonlStore::open_recovering`] found and did: how many corrupt lines were
/// quarantined (never silently dropped), where they went, and whether the log was
/// rewritten clean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Corrupt (torn, truncated, foreign) lines moved to the quarantine sidecar.
    pub quarantined: usize,
    /// Intact result records the recovered store holds.
    pub records: usize,
    /// The `<log>.quarantine` sidecar file corrupt lines are appended to.
    pub sidecar: PathBuf,
    /// The store's generation after recovery (recovery compacts, so a rewrite
    /// bumps the generation and retains the pre-recovery log as `.gen-N`).
    pub generation: u64,
    /// Whether a recovery rewrite actually ran (`false` for an already-clean log).
    pub rewritten: bool,
}

impl RecoveryReport {
    /// Publish this report to `recorder` as a `store.recovered` event under
    /// `scope`.  Clean opens (nothing quarantined, no rewrite) emit nothing.
    pub fn publish(&self, recorder: &dyn Recorder, scope: &str) {
        if !self.rewritten || !recorder.enabled() {
            return;
        }
        recorder.event(
            scope,
            "store.recovered",
            &[
                (
                    "quarantined",
                    wd_obs::FieldValue::U64(self.quarantined as u64),
                ),
                ("records", wd_obs::FieldValue::U64(self.records as u64)),
                ("generation", wd_obs::FieldValue::U64(self.generation)),
            ],
        );
    }
}

enum Record {
    Result(String, f64),
    Stats(CacheStats),
    Context(String),
    Schema(String),
    Generation(u64),
}

/// Extract the value of a `"name":"<value>"` string field.
fn json_str_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pattern = format!("\"{name}\":\"");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extract the value of a `"name":<digits>` unsigned integer field.
fn json_uint_field(line: &str, name: &str) -> Option<u64> {
    let pattern = format!("\"{name}\":");
    let start = line.find(&pattern)? + pattern.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Whether the file's last byte is a newline (empty files count as terminated).
fn ends_with_newline(path: &Path) -> io::Result<bool> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = File::open(path)?;
    if file.metadata()?.len() == 0 {
        return Ok(true);
    }
    file.seek(SeekFrom::End(-1))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    Ok(byte[0] == b'\n')
}

fn parse_line(line: &str) -> Option<Record> {
    if let Some(schema) = json_str_field(line, "schema") {
        return Some(Record::Schema(schema.to_string()));
    }
    if let Some(context) = json_str_field(line, "context") {
        return Some(Record::Context(context.to_string()));
    }
    if let Some(key) = json_str_field(line, "config") {
        // the bit pattern is authoritative; fall back to the decimal field for
        // hand-written lines
        let energy = match json_str_field(line, "bits") {
            Some(hex) => f64::from_bits(u64::from_str_radix(hex, 16).ok()?),
            None => {
                let pattern = "\"energy\":";
                let start = line.find(pattern)? + pattern.len();
                let rest = &line[start..];
                // a number not terminated by ',' or '}' is a torn tail: its
                // decimal may itself be truncated, and a truncated decimal parses
                // to a plausible but wrong energy — reject the line instead
                let end = rest.find([',', '}'])?;
                rest[..end].trim().parse().ok()?
            }
        };
        return Some(Record::Result(key.to_string(), energy));
    }
    if let Some(generation) = json_uint_field(line, "gen") {
        return Some(Record::Generation(generation));
    }
    if line.contains("\"stats\"") {
        return Some(Record::Stats(CacheStats {
            hits: json_uint_field(line, "hits")? as usize,
            misses: json_uint_field(line, "misses")? as usize,
        }));
    }
    None
}

impl<C: ConfigKey> JsonlStore<C> {
    /// Open (or create) the store at `path`, loading every intact record.
    ///
    /// No context check is performed — prefer [`JsonlStore::open_with_context`] for
    /// stores that outlive one process.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut map = HashMap::new();
        let mut stats = CacheStats::default();
        let mut skipped = 0usize;
        let mut corrupt = Vec::new();
        let mut context = None;
        let mut schema = None;
        let mut generation = 0u64;
        let mut saw_lines = false;
        let mut loaded_records = 0u64;
        let mut loaded_bytes = 0u64;
        let mut needs_seal = false;
        if path.exists() {
            for line in BufReader::new(File::open(&path)?).split(b'\n') {
                let line = String::from_utf8(line?).unwrap_or_default();
                loaded_bytes += line.len() as u64 + 1;
                if line.trim().is_empty() {
                    continue;
                }
                saw_lines = true;
                match parse_line(&line) {
                    Some(Record::Result(key, energy)) => {
                        loaded_records += 1;
                        map.insert(key, energy);
                    }
                    Some(Record::Stats(loaded)) => stats += loaded,
                    Some(Record::Context(loaded)) => context = Some(loaded),
                    Some(Record::Schema(loaded)) => schema = Some(loaded),
                    Some(Record::Generation(loaded)) => generation = loaded,
                    None => {
                        skipped += 1;
                        corrupt.push(line);
                    }
                }
            }
            // a log killed mid-append can end in a partial line with no newline;
            // seal it so the next append starts a fresh line instead of gluing onto
            // the fragment (which could corrupt — or worse, mis-associate — the
            // next record)
            needs_seal = !ends_with_newline(&path)?;
        }
        // the single-writer lock is taken before the append handle (and before the
        // seal write), so a second opener can never interleave with this one
        let lock = StoreLock::acquire(&path, generation)?;
        let mut writer = BufWriter::new(OpenOptions::new().create(true).append(true).open(&path)?);
        if needs_seal {
            // `loaded_bytes` already counted the phantom newline of the partial
            // tail, so it matches the sealed file size without adjustment
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        let store = JsonlStore {
            path,
            map: RwLock::new(map),
            writer: Mutex::new(writer),
            stats: Mutex::new(stats),
            write_error: Mutex::new(None),
            skipped_lines: skipped,
            corrupt_lines: corrupt,
            context,
            schema,
            generation: AtomicU64::new(generation),
            retain_generations: DEFAULT_RETAINED_GENERATIONS,
            io: IoCounters {
                loaded_records,
                loaded_bytes,
                ..IoCounters::default()
            },
            _lock: lock,
            _config: PhantomData,
        };
        if !saw_lines {
            // stamp fresh stores with the current schema version so future readers
            // can detect (and migrate) old layouts; pre-header stores keep `None`
            store.append(&format!("{{\"schema\":\"{STORE_SCHEMA_VERSION}\"}}"));
            store.flush()?;
            return Ok(JsonlStore {
                schema: Some(STORE_SCHEMA_VERSION.to_string()),
                ..store
            });
        }
        Ok(store)
    }

    /// Open (or create) the store at `path` for one evaluation context.
    ///
    /// `context` should identify everything the energies depend on — workload,
    /// platform, evaluation mode (e.g. `"em|human-genome|3170000000"`) — and must be
    /// JSON-string-safe (no `"`, `\` or control characters).  A fresh store is
    /// stamped with the context; re-opening checks the stamp and fails with
    /// [`io::ErrorKind::InvalidData`] when it differs, so a campaign can never
    /// silently consume energies recorded under a different objective.  Stores with
    /// existing records but no stamp (created via [`JsonlStore::open`]) are rejected
    /// too — their provenance is unknown.
    pub fn open_with_context(path: impl AsRef<Path>, context: &str) -> io::Result<Self> {
        assert!(
            !context.contains(['"', '\\', '\n', '\r']),
            "store contexts must be JSON-string-safe: {context:?}"
        );
        let store = Self::open(path)?;
        match store.context.as_deref() {
            Some(existing) if existing == context => Ok(store),
            Some(existing) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "result store {} was recorded under context {existing:?}, \
                     refusing to reuse it for context {context:?}",
                    store.path.display()
                ),
            )),
            None if store.is_empty() => {
                store.append(&format!("{{\"context\":\"{context}\"}}"));
                store.flush()?;
                Ok(JsonlStore {
                    context: Some(context.to_string()),
                    ..store
                })
            }
            None => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "result store {} holds records of unknown provenance (no context \
                     stamp); refusing to reuse it for context {context:?}",
                    store.path.display()
                ),
            )),
        }
    }

    /// The file backing this store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The context this store was stamped with, when present.
    pub fn context(&self) -> Option<&str> {
        self.context.as_deref()
    }

    /// Number of malformed/truncated lines skipped while loading.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// The schema version this store's file was stamped with *when it was loaded*
    /// ([`STORE_SCHEMA_VERSION`] for stores created by this code; `None` for stores
    /// written before the header existed).  [`JsonlStore::compact`] stamps the
    /// current version into the file; reopen to observe it on an old store.
    pub fn schema_version(&self) -> Option<&str> {
        self.schema.as_deref()
    }

    /// The store's current generation: 0 for a log that was never compacted,
    /// incremented by every [`JsonlStore::compact`] pass.  Each compaction retains
    /// the pre-compaction log verbatim as `<path>.gen-<N>` (N = the generation it
    /// snapshots), giving point-in-time rollback via [`JsonlStore::rollback`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    fn generation_path(path: &Path, generation: u64) -> PathBuf {
        PathBuf::from(format!("{}.gen-{generation}", path.display()))
    }

    /// Path of the retained snapshot for `generation` (which may or may not exist;
    /// see [`JsonlStore::retained_generations`]).
    pub fn generation_file(&self, generation: u64) -> PathBuf {
        Self::generation_path(&self.path, generation)
    }

    /// Generations with a retained `.gen-N` snapshot on disk, ascending.
    pub fn retained_generations(&self) -> Vec<u64> {
        (0..self.generation())
            .filter(|&generation| Self::generation_path(&self.path, generation).exists())
            .collect()
    }

    /// Cap the number of `.gen-N` rollback snapshots this store keeps (default
    /// [`DEFAULT_RETAINED_GENERATIONS`]).  After every [`JsonlStore::compact`]
    /// pass, only the most recent `keep` snapshots survive; older ones are pruned.
    /// `keep == 0` retains nothing (every compaction immediately deletes the
    /// snapshot it just wrote, trading rollback for minimum disk).
    pub fn with_generation_retention(mut self, keep: usize) -> Self {
        self.retain_generations = keep;
        self
    }

    /// Remove `.gen-N` snapshots older than the retention window ending at the
    /// current generation.  Missing files are fine (never retained, pruned
    /// earlier, or removed by hand).
    fn prune_generations(&self) {
        let next = self.generation();
        for old in 0..next.saturating_sub(self.retain_generations as u64) {
            let _ = std::fs::remove_file(Self::generation_path(&self.path, old));
        }
    }

    /// Roll the log at `path` back to the retained snapshot of `generation` and
    /// reopen it.
    ///
    /// The snapshot is copied over the live log through a temporary sibling file
    /// and an atomic rename, so a crash mid-rollback leaves the live log intact.
    /// The rolled-back store reports `generation()` == `generation` again, and the
    /// snapshot file itself is kept (rolling forward again stays possible).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] when no `.gen-<generation>` snapshot is
    /// retained, plus any I/O error of the copy/rename/reopen.
    pub fn rollback(path: impl AsRef<Path>, generation: u64) -> io::Result<Self> {
        let path = path.as_ref();
        let snapshot = Self::generation_path(path, generation);
        if !snapshot.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "no retained generation-{generation} snapshot at {}",
                    snapshot.display()
                ),
            ));
        }
        let tmp = PathBuf::from(format!("{}.rollback-tmp", path.display()));
        std::fs::copy(&snapshot, &tmp)?;
        std::fs::rename(&tmp, path)?;
        Self::open(path)
    }

    /// Open the store at `path`, quarantining corrupt lines instead of only
    /// skipping them.
    ///
    /// A clean log opens exactly like [`JsonlStore::open`] and reports
    /// `rewritten: false`.  When the log holds corrupt lines (torn batch appends,
    /// truncated tails, foreign text), each one is appended verbatim to the
    /// `<path>.quarantine` sidecar — evidence is preserved, never silently
    /// dropped — and the log is then compacted, which rewrites it clean and
    /// retains the pre-recovery log as a `.gen-N` snapshot.  Forward the returned
    /// [`RecoveryReport`] to observability with [`RecoveryReport::publish`].
    pub fn open_recovering(path: impl AsRef<Path>) -> io::Result<(Self, RecoveryReport)> {
        let mut store = Self::open(path)?;
        let sidecar = PathBuf::from(format!("{}.quarantine", store.path.display()));
        if store.corrupt_lines.is_empty() {
            let report = RecoveryReport {
                quarantined: 0,
                records: store.len(),
                sidecar,
                generation: store.generation(),
                rewritten: false,
            };
            return Ok((store, report));
        }
        {
            let mut side = BufWriter::new(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&sidecar)?,
            );
            for line in &store.corrupt_lines {
                writeln!(side, "{line}")?;
            }
            side.flush()?;
        }
        store.compact()?;
        let quarantined = store.corrupt_lines.len();
        // the log is clean now; the evidence lives in the sidecar
        store.corrupt_lines.clear();
        store.skipped_lines = 0;
        let report = RecoveryReport {
            quarantined,
            records: store.len(),
            sidecar,
            generation: store.generation(),
            rewritten: true,
        };
        Ok((store, report))
    }

    /// Rewrite the append-only log keeping **one record per key** — the lowest energy
    /// wins, ties keep the earliest record — plus a fresh [`STORE_SCHEMA_VERSION`]
    /// header, the context stamp (when present) and a single merged stats line.
    ///
    /// Overlapping campaigns against one store append duplicate records without
    /// bound (the coordinator records every evaluated batch); compaction bounds the
    /// file again.  Keys keep their first-occurrence order, so compacting is
    /// deterministic.  The rewrite goes through a temporary sibling file that is
    /// atomically renamed over the log, and the in-memory map is reloaded from the
    /// kept records, so concurrent appends block (the writer is locked for the
    /// duration) but are never lost.
    ///
    /// Note the merge rule: the in-memory map of a *live* store is last-write-wins,
    /// which for the deterministic objectives the coordinator runs is
    /// indistinguishable (duplicate records carry identical energies).  Compaction
    /// applies the coordinator's lowest-energy/earliest rule, so hand-written logs
    /// with conflicting duplicates resolve to the merged best.
    ///
    /// Every pass first retains the pre-compaction log verbatim as
    /// `<path>.gen-<N>` (N = the current [`JsonlStore::generation`]) and stamps
    /// `{"gen":N+1}` into the rewritten log, so any earlier state can be restored
    /// with [`JsonlStore::rollback`].  The copy happens *before* the atomic
    /// rename: a crash between the two leaves the live log untouched and at worst
    /// a redundant snapshot behind.  Snapshots older than the retention cap
    /// ([`DEFAULT_RETAINED_GENERATIONS`], tunable via
    /// [`JsonlStore::with_generation_retention`]) are pruned after each pass, so
    /// long-lived stores keep a bounded rollback window instead of one full log
    /// copy per compaction forever.
    pub fn compact(&self) -> io::Result<CompactionReport> {
        let mut writer = lock(&self.writer);
        writer.flush()?;

        // retain the current log for point-in-time rollback before rewriting it
        let generation = self.generation.load(Ordering::Relaxed);
        std::fs::copy(&self.path, Self::generation_path(&self.path, generation))?;

        // re-read the log: the in-memory map holds only the last write per key, the
        // merge rule needs every duplicate in file order
        let mut order: Vec<String> = Vec::new();
        let mut merged: HashMap<String, f64> = HashMap::new();
        let mut stats = CacheStats::default();
        let mut records_before = 0usize;
        for line in BufReader::new(File::open(&self.path)?).split(b'\n') {
            let line = String::from_utf8(line?).unwrap_or_default();
            if line.trim().is_empty() {
                continue;
            }
            match parse_line(&line) {
                Some(Record::Result(key, energy)) => {
                    records_before += 1;
                    match merged.get_mut(&key) {
                        None => {
                            order.push(key.clone());
                            merged.insert(key, energy);
                        }
                        // strictly lower replaces; an equal energy keeps the earliest
                        Some(best) => {
                            if energy.total_cmp(best).is_lt() {
                                *best = energy;
                            }
                        }
                    }
                }
                Some(Record::Stats(loaded)) => stats += loaded,
                // context/schema/generation are re-stamped below; foreign lines
                // are dropped (use open_recovering to quarantine them first)
                Some(Record::Context(_))
                | Some(Record::Schema(_))
                | Some(Record::Generation(_))
                | None => {}
            }
        }

        // write the compacted log next to the original, then rename over it
        let tmp_path = self.path.with_extension("compact-tmp");
        {
            let mut tmp = BufWriter::new(File::create(&tmp_path)?);
            writeln!(tmp, "{{\"schema\":\"{STORE_SCHEMA_VERSION}\"}}")?;
            writeln!(tmp, "{{\"gen\":{}}}", generation + 1)?;
            if let Some(context) = &self.context {
                writeln!(tmp, "{{\"context\":\"{context}\"}}")?;
            }
            for key in &order {
                writeln!(tmp, "{}", Self::result_line(key, merged[key]))?;
            }
            writeln!(
                tmp,
                "{{\"stats\":{{\"hits\":{},\"misses\":{}}}}}",
                stats.hits, stats.misses
            )?;
            tmp.flush()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;

        // swap in a fresh append handle (the old one points at the replaced inode)
        *writer = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);

        let report = CompactionReport {
            records_before,
            records_after: order.len(),
        };
        self.io.compactions.fetch_add(1, Ordering::Relaxed);
        self.io
            .compacted_dropped
            .fetch_add(report.dropped() as u64, Ordering::Relaxed);
        self.generation.store(generation + 1, Ordering::Relaxed);
        self.prune_generations();
        *write_lock(&self.map) = merged;
        *lock(&self.stats) = stats;
        Ok(report)
    }

    /// Decode every stored record back into configurations (records whose key no
    /// longer decodes — e.g. written by an older schema — are skipped).
    pub fn entries(&self) -> Vec<(C, f64)> {
        read_lock(&self.map)
            .iter()
            .filter_map(|(key, &energy)| Some((C::decode_key(key)?, energy)))
            .collect()
    }

    /// This instance's I/O counters: records/bytes read at load time and durably
    /// appended (or compacted away) since.
    pub fn io_stats(&self) -> StoreIoStats {
        StoreIoStats {
            loaded_records: self.io.loaded_records,
            loaded_bytes: self.io.loaded_bytes,
            skipped_lines: self.skipped_lines as u64,
            appended_records: self.io.appended_records.load(Ordering::Relaxed),
            appended_bytes: self.io.appended_bytes.load(Ordering::Relaxed),
            compactions: self.io.compactions.load(Ordering::Relaxed),
            compacted_dropped: self.io.compacted_dropped.load(Ordering::Relaxed),
        }
    }

    /// Publish [`JsonlStore::io_stats`] to `recorder` as counters named
    /// `{scope}.store.*` (e.g. `campaign.store.appended_records`).  Call once at the
    /// end of a run — counters are cumulative, so publishing twice double-counts.
    pub fn publish_io(&self, recorder: &dyn Recorder, scope: &str) {
        if !recorder.enabled() {
            return;
        }
        let io = self.io_stats();
        for (name, value) in [
            ("loaded_records", io.loaded_records),
            ("loaded_bytes", io.loaded_bytes),
            ("skipped_lines", io.skipped_lines),
            ("appended_records", io.appended_records),
            ("appended_bytes", io.appended_bytes),
            ("compactions", io.compactions),
            ("compacted_dropped", io.compacted_dropped),
        ] {
            recorder.counter(&format!("{scope}.store.{name}"), value);
        }
    }

    /// Append `line`, flush it to the OS so a kill cannot lose it, and remember the
    /// first write error for the next `flush`.
    fn append(&self, line: &str) {
        let mut writer = lock(&self.writer);
        if let Err(error) = writeln!(writer, "{line}").and_then(|()| writer.flush()) {
            lock(&self.write_error).get_or_insert(error);
        } else {
            self.io.appended_records.fetch_add(1, Ordering::Relaxed);
            self.io
                .appended_bytes
                .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        }
    }

    fn result_line(key: &str, energy: f64) -> String {
        debug_assert!(
            !key.contains(['"', '\\', '\n', '\r']),
            "ConfigKey encodings must be JSON-string-safe: {key:?}"
        );
        format!(
            "{{\"config\":\"{key}\",\"energy\":{energy},\"bits\":\"{bits:016x}\"}}",
            bits = energy.to_bits()
        )
    }
}

impl<C: ConfigKey> ResultStore<C> for JsonlStore<C> {
    fn lookup(&self, config: &C) -> Option<f64> {
        read_lock(&self.map).get(&config.encode_key()).copied()
    }

    fn lookup_batch(&self, configs: &[C]) -> Vec<Option<f64>> {
        let map = read_lock(&self.map);
        configs
            .iter()
            .map(|config| map.get(&config.encode_key()).copied())
            .collect()
    }

    fn record(&self, config: &C, energy: f64) {
        let key = config.encode_key();
        self.append(&Self::result_line(&key, energy));
        write_lock(&self.map).insert(key, energy);
    }

    fn record_batch(&self, configs: &[C], energies: &[f64]) {
        assert_eq!(configs.len(), energies.len());
        let keys: Vec<String> = configs.iter().map(ConfigKey::encode_key).collect();
        {
            // one writer lock for the whole batch keeps shard appends contiguous; the
            // trailing flush bounds what a kill can lose to this batch
            let mut writer = lock(&self.writer);
            let mut wrote = Ok(());
            for (key, &energy) in keys.iter().zip(energies) {
                let line = Self::result_line(key, energy);
                wrote = writeln!(writer, "{line}");
                if wrote.is_err() {
                    break;
                }
                self.io.appended_records.fetch_add(1, Ordering::Relaxed);
                self.io
                    .appended_bytes
                    .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
            }
            if let Err(error) = wrote.and_then(|()| writer.flush()) {
                lock(&self.write_error).get_or_insert(error);
            }
        }
        let mut map = write_lock(&self.map);
        for (key, &energy) in keys.into_iter().zip(energies) {
            map.insert(key, energy);
        }
    }

    fn record_stats(&self, stats: CacheStats) {
        self.append(&format!(
            "{{\"stats\":{{\"hits\":{},\"misses\":{}}}}}",
            stats.hits, stats.misses
        ));
        *lock(&self.stats) += stats;
    }

    fn recorded_stats(&self) -> CacheStats {
        *lock(&self.stats)
    }

    fn len(&self) -> usize {
        read_lock(&self.map).len()
    }

    fn flush(&self) -> io::Result<()> {
        if let Some(error) = lock(&self.write_error).take() {
            return Err(error);
        }
        lock(&self.writer).flush()
    }

    fn inject_torn_write(&self, hint: &str) {
        // the front half of a result record with no closing quote or brace — what a
        // crash in the middle of `write(2)` leaves behind (written as its own line,
        // i.e. as the fragment looks once the tail is sealed, so the injection
        // stays local to one record)
        self.append(&format!("{{\"config\":\"{hint}\",\"ener"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "wd_dist-store-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn memory_store_round_trips_and_accumulates_stats() {
        let store: MemoryStore<(u32, u32)> = MemoryStore::new();
        assert!(store.is_empty());
        assert_eq!(store.lookup(&(1, 2)), None);
        store.record(&(1, 2), 0.5);
        store.record_batch(&[(3, 4), (5, 6)], &[1.5, 2.5]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.lookup(&(3, 4)), Some(1.5));
        assert_eq!(store.lookup_batch(&[(1, 2), (9, 9)]), vec![Some(0.5), None]);
        store.record_stats(CacheStats { hits: 2, misses: 3 });
        store.record_stats(CacheStats { hits: 1, misses: 0 });
        assert_eq!(store.recorded_stats(), CacheStats { hits: 3, misses: 3 });
        store.flush().unwrap();
    }

    #[test]
    fn jsonl_store_persists_exact_bits_across_instances() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        // energies chosen to stress decimal printing: a subnormal-ish value, a value
        // with no short decimal representation, and an integer
        let pairs = [((13u32, 5u32), 0.1 + 0.2), ((0, 0), 1e-300), ((7, 7), 42.0)];
        {
            let store: JsonlStore<(u32, u32)> = JsonlStore::open(&path).unwrap();
            for (config, energy) in pairs {
                store.record(&config, energy);
            }
            store.record_stats(CacheStats { hits: 0, misses: 3 });
            store.flush().unwrap();
        }
        {
            let store: JsonlStore<(u32, u32)> = JsonlStore::open(&path).unwrap();
            assert_eq!(store.len(), 3);
            assert_eq!(store.skipped_lines(), 0);
            for (config, energy) in pairs {
                assert_eq!(store.lookup(&config).unwrap().to_bits(), energy.to_bits());
            }
            assert_eq!(store.recorded_stats(), CacheStats { hits: 0, misses: 3 });
            let mut entries = store.entries();
            entries.sort_by_key(|(config, _)| *config);
            assert_eq!(entries.len(), 3);
            assert_eq!(entries[2].0, (13, 5));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn jsonl_store_skips_truncated_and_foreign_lines() {
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            store.record(&1, 1.0);
            store.record(&2, 2.0);
            store.flush().unwrap();
        }
        // simulate a campaign killed mid-write: append garbage and a cut-off record
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("not json at all\n");
        contents.push_str("{\"config\":\"3\",\"ener");
        std::fs::write(&path, contents).unwrap();

        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.skipped_lines(), 2);
        assert_eq!(store.lookup(&1), Some(1.0));
        assert_eq!(store.lookup(&3), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn context_stamp_guards_against_cross_objective_reuse() {
        let path = temp_path("context");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> =
                JsonlStore::open_with_context(&path, "em|human|3170000000").unwrap();
            assert_eq!(store.context(), Some("em|human|3170000000"));
            store.record(&1, 1.0);
            store.flush().unwrap();
        }
        // the same context re-opens and resumes
        {
            let store: JsonlStore<u32> =
                JsonlStore::open_with_context(&path, "em|human|3170000000").unwrap();
            assert_eq!(store.len(), 1);
            assert_eq!(store.skipped_lines(), 0);
        }
        // a different objective is refused instead of silently served stale energies
        let err = JsonlStore::<u32>::open_with_context(&path, "eml|cat|2430000000").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();

        // records of unknown provenance (stampless store) are refused too
        let path = temp_path("context-unstamped");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            store.record(&1, 1.0);
            store.flush().unwrap();
        }
        assert!(JsonlStore::<u32>::open_with_context(&path, "any").is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn records_are_durable_before_an_explicit_flush() {
        // a killed campaign must lose at most the batch being written: appends are
        // flushed to the OS per record/batch, not parked in the process buffer
        let path = temp_path("durability");
        let _ = std::fs::remove_file(&path);
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        store.record(&1, 1.0);
        store.record_batch(&[2, 3], &[2.0, 3.0]);
        // read the file out-of-band while the store (and its buffer) is still alive
        // (3 records + the schema header of a fresh store)
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 4);
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn jsonl_store_later_records_override_earlier_ones() {
        let path = temp_path("override");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            store.record(&9, 1.0);
            store.record(&9, 5.0);
            store.flush().unwrap();
            assert_eq!(store.lookup(&9), Some(5.0));
        }
        // append order is preserved on disk, so the reloaded map keeps the last write
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup(&9), Some(5.0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_stores_are_stamped_with_the_schema_version() {
        let path = temp_path("schema");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            assert_eq!(store.schema_version(), Some(STORE_SCHEMA_VERSION));
            store.record(&1, 1.0);
            store.flush().unwrap();
        }
        // the header is a recognised record kind, not a skipped foreign line
        let reopened: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(reopened.schema_version(), Some(STORE_SCHEMA_VERSION));
        assert_eq!(reopened.skipped_lines(), 0);
        assert_eq!(reopened.len(), 1);
        std::fs::remove_file(&path).unwrap();

        // pre-header stores load fine and report no version
        let old = temp_path("schema-old");
        std::fs::write(&old, "{\"config\":\"7\",\"energy\":1.5}\n").unwrap();
        let store: JsonlStore<u32> = JsonlStore::open(&old).unwrap();
        assert_eq!(store.schema_version(), None);
        assert_eq!(store.lookup(&7), Some(1.5));
        std::fs::remove_file(&old).unwrap();
    }

    #[test]
    fn compaction_keeps_one_record_per_key_lowest_energy_wins() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let store: JsonlStore<u32> =
            JsonlStore::open_with_context(&path, "em|human|compact-test").unwrap();
        // overlapping campaigns: key 1 improves, key 2 worsens, key 3 ties, key 4 once
        store.record(&1, 5.0);
        store.record(&2, 1.0);
        store.record(&1, 3.0);
        store.record(&2, 2.0);
        store.record(&3, 7.0);
        store.record(&3, 7.0);
        store.record(&4, 4.0);
        store.record_stats(CacheStats { hits: 5, misses: 7 });
        store.record_stats(CacheStats { hits: 1, misses: 0 });
        store.flush().unwrap();

        let report = store.compact().unwrap();
        assert_eq!(
            report,
            CompactionReport {
                records_before: 7,
                records_after: 4
            }
        );
        assert_eq!(report.dropped(), 3);

        // the live map now follows the merge rule (lowest wins)
        assert_eq!(store.lookup(&1), Some(3.0));
        assert_eq!(store.lookup(&2), Some(1.0));
        assert_eq!(store.lookup(&3), Some(7.0));
        assert_eq!(store.lookup(&4), Some(4.0));
        assert_eq!(store.len(), 4);
        assert_eq!(store.recorded_stats(), CacheStats { hits: 6, misses: 7 });

        // appends after compaction land in the rewritten file
        store.record(&5, 9.0);
        store.flush().unwrap();

        // a reopened store sees the compacted log: header + generation + context +
        // 5 records + stats, nothing skipped, context intact
        let snapshot = store.generation_file(0);
        drop(store); // release the single-writer lock before reopening
        let reopened: JsonlStore<u32> =
            JsonlStore::open_with_context(&path, "em|human|compact-test").unwrap();
        assert_eq!(reopened.schema_version(), Some(STORE_SCHEMA_VERSION));
        assert_eq!(reopened.skipped_lines(), 0);
        assert_eq!(reopened.len(), 5);
        assert_eq!(reopened.generation(), 1);
        assert_eq!(reopened.lookup(&1), Some(3.0));
        assert_eq!(reopened.lookup(&5), Some(9.0));
        assert_eq!(reopened.recorded_stats(), CacheStats { hits: 6, misses: 7 });
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 1 + 1 + 1 + 4 + 1 + 1);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(snapshot).unwrap();
    }

    #[test]
    fn compaction_preserves_exact_bits_and_is_idempotent() {
        let path = temp_path("compact-bits");
        let _ = std::fs::remove_file(&path);
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        let awkward = 0.1 + 0.2;
        store.record(&11, awkward);
        store.record(&11, awkward + 1.0);
        store.record(&12, 1e-300);
        store.compact().unwrap();
        assert_eq!(store.lookup(&11).unwrap().to_bits(), awkward.to_bits());

        let again = store.compact().unwrap();
        assert_eq!(again.records_before, again.records_after);
        assert_eq!(again.dropped(), 0);

        let snapshots = [store.generation_file(0), store.generation_file(1)];
        drop(store); // release the single-writer lock before reopening
        let reopened: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(reopened.lookup(&11).unwrap().to_bits(), awkward.to_bits());
        assert_eq!(reopened.lookup(&12).unwrap().to_bits(), 1e-300f64.to_bits());
        assert_eq!(reopened.generation(), 2);
        std::fs::remove_file(&path).unwrap();
        for snapshot in snapshots {
            std::fs::remove_file(snapshot).unwrap();
        }
    }

    #[test]
    fn second_append_handle_on_a_live_log_fails_loudly() {
        let path = temp_path("single-writer");
        let _ = std::fs::remove_file(&path);
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        store.record(&1, 1.0);

        // a second handle on the same live log would interleave appends; the
        // advisory lock refuses it with an error naming the holder
        let contended = JsonlStore::<u32>::open(&path).unwrap_err();
        assert_eq!(contended.kind(), io::ErrorKind::WouldBlock);
        let message = contended.to_string();
        assert!(message.contains(&std::process::id().to_string()));
        assert!(message.contains(".lock"));

        // read-only access needs no lock and sees the flushed records
        store.flush().unwrap();
        let (records, skipped) = read_result_records(&path).unwrap();
        assert_eq!(records.get("1"), Some(&1.0));
        assert_eq!(skipped, 0);

        // dropping the store releases the lock; the next open succeeds
        drop(store);
        assert!(!StoreLock::lock_path(&path).exists());
        let reopened: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(reopened.lookup(&1), Some(1.0));
        drop(reopened);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_locks_of_dead_processes_are_taken_over() {
        let path = temp_path("stale-lock");
        let _ = std::fs::remove_file(&path);
        // the footprint of a kill -9'd writer: a lock whose holder PID is gone
        // (pid 0 is the kernel's — never a valid lock holder, never in /proc)
        std::fs::write(StoreLock::lock_path(&path), "{\"pid\":0,\"gen\":0}\n").unwrap();
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        store.record(&7, 7.0);
        store.flush().unwrap();
        drop(store);

        // an unreadable sentinel is equally stale
        std::fs::write(StoreLock::lock_path(&path), "garbage").unwrap();
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(store.lookup(&7), Some(7.0));
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_retention_prunes_generations_beyond_the_cap() {
        let path = temp_path("retention");
        let _ = std::fs::remove_file(&path);
        let store: JsonlStore<u32> = JsonlStore::open(&path)
            .unwrap()
            .with_generation_retention(2);
        for round in 0..5u32 {
            store.record(&round, f64::from(round));
            store.compact().unwrap();
        }
        assert_eq!(store.generation(), 5);
        // only the most recent 2 of the 5 snapshots survive
        assert_eq!(store.retained_generations(), vec![3, 4]);
        for pruned in 0..3 {
            assert!(!store.generation_file(pruned).exists());
        }
        // the retained window still rolls back
        let snapshots = [store.generation_file(3), store.generation_file(4)];
        drop(store);
        let rolled: JsonlStore<u32> = JsonlStore::rollback(&path, 3).unwrap();
        assert_eq!(rolled.generation(), 3);
        assert_eq!(rolled.lookup(&4), None, "post-snapshot writes are gone");
        drop(rolled);
        std::fs::remove_file(&path).unwrap();
        for snapshot in snapshots {
            std::fs::remove_file(snapshot).unwrap();
        }
    }

    #[test]
    fn read_result_records_tolerates_torn_tails_and_missing_files() {
        let path = temp_path("raw-read");
        let _ = std::fs::remove_file(&path);
        let (records, skipped) = read_result_records(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(skipped, 0);

        std::fs::write(
            &path,
            "{\"schema\":\"wd-dist-store/v2\"}\n\
             {\"config\":\"3,4\",\"energy\":2.5,\"bits\":\"4004000000000000\"}\n\
             {\"config\":\"5,6\",\"ener",
        )
        .unwrap();
        let (records, skipped) = read_result_records(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records.get("3,4").copied(), Some(2.5));
        assert_eq!(skipped, 1, "the torn tail is counted, not half-parsed");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn io_counters_track_loads_appends_and_compactions() {
        let path = temp_path("io-counters");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            let io = store.io_stats();
            assert_eq!(io.loaded_records, 0);
            // the fresh-store schema stamp is already an append
            assert_eq!(io.appended_records, 1);
            assert!(io.appended_bytes > 0);

            store.record(&1, 1.0);
            store.record_batch(&[2, 3], &[2.0, 2.0]);
            store.record(&2, 5.0); // duplicate key, dropped by compaction
            store.record_stats(CacheStats { hits: 1, misses: 4 });
            store.flush().unwrap();
            let io = store.io_stats();
            assert_eq!(io.appended_records, 1 + 4 + 1);
            let on_disk = std::fs::metadata(&path).unwrap().len();
            assert_eq!(io.appended_bytes, on_disk);

            let report = store.compact().unwrap();
            assert_eq!(report.dropped(), 1);
            let io = store.io_stats();
            assert_eq!(io.compactions, 1);
            assert_eq!(io.compacted_dropped, 1);
        }
        // a reopened store counts what it loaded (3 results) byte for byte
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        let io = store.io_stats();
        assert_eq!(io.loaded_records, 3);
        assert_eq!(io.loaded_bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(io.skipped_lines, 0);
        assert_eq!(io.appended_records, 0);

        // counters publish under the requested scope
        let registry = wd_obs::Registry::new();
        store.publish_io(&registry, "campaign");
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counters.get("campaign.store.loaded_records"),
            Some(&3)
        );
        assert_eq!(
            snapshot.counters.get("campaign.store.appended_records"),
            Some(&0)
        );
        // and a disabled recorder costs nothing and records nothing
        store.publish_io(&wd_obs::NoopRecorder, "campaign");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(store.generation_file(0)).unwrap();
    }

    #[test]
    fn unterminated_tails_are_sealed_on_open() {
        let path = temp_path("seal");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            store.record(&1, 1.0);
            store.flush().unwrap();
        }
        // a crash mid-write leaves a partial record with no trailing newline
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("{\"config\":\"2\",\"ener");
        std::fs::write(&path, &contents).unwrap();

        // without sealing, the next append would glue onto the fragment and corrupt
        // (or mis-associate) an otherwise intact record
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(store.skipped_lines(), 1);
        store.record(&3, 3.0);
        store.flush().unwrap();
        drop(store);

        let reopened: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(reopened.lookup(&1), Some(1.0));
        assert_eq!(reopened.lookup(&3), Some(3.0), "post-crash appends survive");
        assert_eq!(reopened.skipped_lines(), 1, "only the fragment is lost");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recovery_quarantines_corrupt_lines_and_rewrites_the_log_clean() {
        let path = temp_path("recover");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            store.record_batch(&[1, 2, 3], &[1.0, 2.0, 3.0]);
            store.flush().unwrap();
        }
        // two corrupt lines: foreign text and a torn record
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("not json at all\n");
        contents.push_str("{\"config\":\"4\",\"ener");
        std::fs::write(&path, &contents).unwrap();

        let (store, report) = JsonlStore::<u32>::open_recovering(&path).unwrap();
        assert_eq!(report.quarantined, 2);
        assert_eq!(report.records, 3);
        assert!(report.rewritten);
        assert_eq!(report.generation, 1);
        assert_eq!(store.len(), 3);
        assert_eq!(store.lookup(&2), Some(2.0));

        // the corrupt lines are preserved verbatim in the sidecar, not dropped
        let quarantine = std::fs::read_to_string(&report.sidecar).unwrap();
        assert!(quarantine.contains("not json at all"));
        assert!(quarantine.contains("{\"config\":\"4\",\"ener"));

        // the rewritten log is clean: reopening skips nothing
        drop(store);
        let (clean, clean_report) = JsonlStore::<u32>::open_recovering(&path).unwrap();
        assert_eq!(clean.skipped_lines(), 0);
        assert!(!clean_report.rewritten);
        assert_eq!(clean_report.quarantined, 0);

        // recovery publishes a store.recovered event; clean opens stay silent
        let registry = wd_obs::Registry::new();
        report.publish(&registry, "campaign");
        clean_report.publish(&registry, "campaign");
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.events.get("campaign/store.recovered"), Some(&1));

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&report.sidecar).unwrap();
        std::fs::remove_file(clean.generation_file(0)).unwrap();
    }

    #[test]
    fn rollback_restores_a_retained_generation() {
        let path = temp_path("rollback");
        let _ = std::fs::remove_file(&path);
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        store.record(&1, 1.0);
        store.flush().unwrap();
        assert_eq!(store.generation(), 0);
        assert!(store.retained_generations().is_empty());

        // generation 0 -> 1: snapshot retained, then diverge
        store.compact().unwrap();
        assert_eq!(store.generation(), 1);
        store.record(&2, 2.0);
        store.flush().unwrap();
        assert_eq!(store.retained_generations(), vec![0]);
        drop(store);

        // rolling back to generation 0 restores the pre-compaction state
        let rolled: JsonlStore<u32> = JsonlStore::rollback(&path, 0).unwrap();
        assert_eq!(rolled.generation(), 0);
        assert_eq!(rolled.lookup(&1), Some(1.0));
        assert_eq!(rolled.lookup(&2), None, "post-snapshot writes are gone");

        // rolling back to a generation that was never retained is refused
        let missing = JsonlStore::<u32>::rollback(&path, 9).unwrap_err();
        assert_eq!(missing.kind(), io::ErrorKind::NotFound);

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(rolled.generation_file(0)).unwrap();
    }

    #[test]
    fn injected_torn_writes_are_unparseable_and_recoverable() {
        let path = temp_path("inject-torn");
        let _ = std::fs::remove_file(&path);
        {
            let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
            store.record(&1, 1.0);
            ResultStore::<u32>::inject_torn_write(&store, "torn-hint");
            store.flush().unwrap();
        }
        // the torn line is skipped on reload, never half-parsed into a bogus record
        let reloaded: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.skipped_lines(), 1);
        drop(reloaded);
        // ... and recovery quarantines it
        let (recovered, report) = JsonlStore::<u32>::open_recovering(&path).unwrap();
        assert_eq!(report.quarantined, 1);
        assert_eq!(recovered.len(), 1);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&report.sidecar).unwrap();
        std::fs::remove_file(recovered.generation_file(0)).unwrap();
    }

    #[test]
    fn energy_parsing_falls_back_to_the_decimal_field() {
        let path = temp_path("fallback");
        std::fs::write(&path, "{\"config\":\"4\",\"energy\":2.75}\n").unwrap();
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        assert_eq!(store.lookup(&4), Some(2.75));
        assert_eq!(store.skipped_lines(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
