//! The campaign coordinator: shard, evaluate, merge.
//!
//! A [`ShardedCampaign`] partitions an enumerable [`SearchSpace`] with a deterministic
//! [`ShardPlan`], evaluates every shard concurrently (one rayon task per shard — each
//! task standing in for one node of a cluster) through the batched
//! [`wd_opt::ParallelEnumeration`] path, and merges the per-shard bests with
//! [`wd_opt::better_indexed`] over global enumeration indices.  The merge is a strict
//! minimum under the `(energy, index)` order, so the campaign result is bit-identical
//! to a single-node scan for every shard count and every completion order.
//!
//! Every evaluation flows through a [`StoreBackedObjective`]: results already present
//! in the campaign's [`ResultStore`] are returned without touching the objective, and
//! fresh results are recorded as they are produced.  Against a warm store a repeated
//! (or killed-and-restarted) campaign therefore performs **zero** new evaluations.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

use wd_obs::{FieldValue, NoopRecorder, Recorder};
use wd_opt::enumeration::DEFAULT_BATCH_SIZE;
use wd_opt::{
    better_indexed, CacheStats, EnumerationError, Objective, OptimizationTrace, Outcome,
    ParallelEnumeration, SearchSpace, ShardPlan, ShardView,
};

use crate::error::CampaignError;
use crate::store::ResultStore;

/// An [`Objective`] adapter that answers from a [`ResultStore`] when possible and
/// records every fresh evaluation back into it.
///
/// The hit/miss counters mirror [`wd_opt::CachedObjective`] semantics: hits are
/// requests answered by the store, misses are requests that reached the inner
/// objective.  Unlike `CachedObjective` the adapter does not deduplicate within a
/// batch — the enumeration drivers it serves never repeat a configuration inside one
/// batch (duplicates would be evaluated redundantly but identically).
pub struct StoreBackedObjective<'a, O: ?Sized, R: ?Sized> {
    inner: &'a O,
    store: &'a R,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<'a, O: ?Sized, R: ?Sized> StoreBackedObjective<'a, O, R> {
    /// Route `inner` through `store`.
    pub fn new(inner: &'a O, store: &'a R) -> Self {
        StoreBackedObjective {
            inner,
            store,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Hit/miss counters of this adapter (not of the whole store).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<C, O, R> Objective<C> for StoreBackedObjective<'_, O, R>
where
    C: Clone,
    O: Objective<C> + ?Sized,
    R: ResultStore<C> + ?Sized,
{
    fn evaluate(&self, config: &C) -> f64 {
        if let Some(energy) = self.store.lookup(config) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return energy;
        }
        let energy = self.inner.evaluate(config);
        self.store.record(config, energy);
        self.misses.fetch_add(1, Ordering::Relaxed);
        energy
    }

    fn evaluate_batch(&self, configs: &[C]) -> Vec<f64> {
        let mut energies = vec![0.0f64; configs.len()];
        let mut pending: Vec<usize> = Vec::new();
        for (index, slot) in self.store.lookup_batch(configs).into_iter().enumerate() {
            match slot {
                Some(energy) => energies[index] = energy,
                None => pending.push(index),
            }
        }
        self.hits
            .fetch_add(configs.len() - pending.len(), Ordering::Relaxed);
        if pending.is_empty() {
            return energies;
        }

        let pending_configs: Vec<C> = pending.iter().map(|&i| configs[i].clone()).collect();
        let fresh = self.inner.evaluate_batch(&pending_configs);
        debug_assert_eq!(fresh.len(), pending_configs.len());
        self.store.record_batch(&pending_configs, &fresh);
        self.misses.fetch_add(pending.len(), Ordering::Relaxed);
        for (&index, &energy) in pending.iter().zip(&fresh) {
            energies[index] = energy;
        }
        energies
    }
}

/// What one shard (one simulated node) reported back to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Shard position in the plan.
    pub shard_index: usize,
    /// Global enumeration-index range this shard covered.
    pub range: Range<usize>,
    /// Global enumeration index of the shard's best configuration.
    pub best_index: usize,
    /// Energy of the shard's best configuration.
    pub best_energy: f64,
    /// Evaluation requests the shard issued (its share of the space).
    pub evaluations: usize,
    /// Store hit/miss counters of the shard.
    pub stats: CacheStats,
}

impl ShardReport {
    /// The `(global_index, energy)` pair the merge consumes.
    pub fn best(&self) -> (usize, f64) {
        (self.best_index, self.best_energy)
    }
}

/// Merged result of a sharded campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome<C> {
    /// The globally best configuration.
    pub best_config: C,
    /// Its energy.
    pub best_energy: f64,
    /// Its global enumeration index.
    pub best_index: usize,
    /// Total evaluation requests across all shards (the cardinality of the space).
    pub evaluations: usize,
    /// Merged store hit/miss counters of this run; `stats.misses` is the number of
    /// configurations this run actually evaluated (0 against a warm store).
    pub stats: CacheStats,
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
}

impl<C> CampaignOutcome<C> {
    /// Number of fresh evaluations this run performed (store misses).
    pub fn experiments(&self) -> usize {
        self.stats.misses
    }

    /// Convert into the optimizer-level [`Outcome`] shape.
    pub fn into_outcome(self) -> Outcome<C> {
        Outcome {
            best_config: self.best_config,
            best_energy: self.best_energy,
            evaluations: self.evaluations,
            trace: OptimizationTrace::new(),
        }
    }
}

/// Merge per-shard `(global_index, energy)` bests.  The reduction is associative and
/// commutative, so *any* arrival order of shard results produces the same winner —
/// the coordinator does not need to wait for shards in order.
///
/// Returns `None` when `bests` is empty (no shard reported — the campaign-level
/// callers turn this into [`CampaignError::EmptySpace`]).
pub fn merge_shard_bests(bests: impl IntoIterator<Item = (usize, f64)>) -> Option<(usize, f64)> {
    bests.into_iter().reduce(better_indexed)
}

/// A sharded, store-backed exhaustive campaign over an enumerable search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedCampaign {
    /// Number of shards (simulated nodes) to partition the space into; clamped to the
    /// space cardinality at run time.
    pub shard_count: usize,
    /// Batch size of the per-shard [`ParallelEnumeration`] driver.
    pub batch_size: usize,
}

impl ShardedCampaign {
    /// A campaign over `shard_count` shards with the default batch size.
    pub fn new(shard_count: usize) -> Self {
        ShardedCampaign {
            shard_count: shard_count.max(1),
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Override the per-shard evaluation batch size (values below 1 are clamped to 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Run the campaign: shard `space`, evaluate every shard through `store`-backed
    /// `objective`, merge, and record the merged stats into the store.
    ///
    /// On spaces with indexed access ([`SearchSpace::space_len`] /
    /// [`SearchSpace::config_at`]) the campaign is **zero-materialization**: every
    /// shard is a lazy [`ShardView::lazy`] over its global index range and streams
    /// configurations through the batched enumeration driver one chunk at a time —
    /// the full configuration `Vec` never exists, so peak allocation is bounded by
    /// `batch_size` per concurrent shard, not by the space cardinality.  Spaces
    /// without indexed access fall back to materialising the enumeration once.
    ///
    /// The result is bit-identical to
    /// [`ParallelEnumeration::run`] on the whole space, for every shard count,
    /// batch size and shard completion order.  The store is flushed before returning.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::NotEnumerable`] if the space is neither indexed nor
    /// enumerable, [`CampaignError::EmptySpace`] if it holds no configurations, and
    /// [`CampaignError::Store`] if flushing the store fails (a persistent campaign
    /// that cannot persist is not resumable — surfacing the error beats silently
    /// re-evaluating everything next run).
    pub fn run<S, O, R>(
        &self,
        space: &S,
        objective: &O,
        store: &R,
    ) -> Result<CampaignOutcome<S::Config>, CampaignError>
    where
        S: SearchSpace + Sync,
        S::Config: Clone + Send + Sync,
        O: Objective<S::Config> + Sync,
        R: ResultStore<S::Config> + Sync,
    {
        self.run_observed(space, objective, store, &NoopRecorder, "campaign")
    }

    /// [`ShardedCampaign::run`] with the campaign's lifecycle published to `recorder`
    /// under `scope`: a `shard_started` / `shard_completed` event pair per shard
    /// (index, range, best, evaluations, store hits/misses) and one final `merged`
    /// event carrying the campaign result.  The recorder only observes — it sees
    /// shard completions in whatever order rayon finishes them, while the merge stays
    /// order-independent — so outcomes are bit-identical to the unobserved run.
    pub fn run_observed<S, O, R>(
        &self,
        space: &S,
        objective: &O,
        store: &R,
        recorder: &dyn Recorder,
        scope: &str,
    ) -> Result<CampaignOutcome<S::Config>, CampaignError>
    where
        S: SearchSpace + Sync,
        S::Config: Clone + Send + Sync,
        O: Objective<S::Config> + Sync,
        R: ResultStore<S::Config> + Sync,
    {
        let (materialized, total) = match space.space_len() {
            Some(len) => (None, len),
            None => {
                let configs = space.enumerate().ok_or(CampaignError::NotEnumerable)?;
                let len = configs.len();
                (Some(configs), len)
            }
        };
        if total == 0 {
            return Err(CampaignError::EmptySpace);
        }
        let plan = ShardPlan::new(total, self.shard_count);

        let reports: Vec<ShardReport> = (0..plan.shard_count())
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|shard| -> Result<ShardReport, CampaignError> {
                let range = plan.range(shard);
                if recorder.enabled() {
                    recorder.event(
                        scope,
                        "shard_started",
                        &[
                            ("shard", FieldValue::U64(shard as u64)),
                            ("start", FieldValue::U64(range.start as u64)),
                            ("len", FieldValue::U64(range.len() as u64)),
                        ],
                    );
                }
                let view = match &materialized {
                    Some(configs) => ShardView::new(space, &configs[range.clone()], range.start),
                    None => ShardView::lazy(space, range.clone()),
                };
                let backed = StoreBackedObjective::new(objective, store);
                let indexed = ParallelEnumeration::with_batch_size(self.batch_size)
                    .try_run_indexed(&view, &backed)
                    .map_err(|error| match error {
                        // shard-local indices translate back to global ones
                        EnumerationError::MissingConfig { index } => CampaignError::MissingConfig {
                            index: view.global_index(index),
                        },
                        EnumerationError::NotEnumerable => CampaignError::NotEnumerable,
                        EnumerationError::Empty => CampaignError::EmptySpace,
                    })?;
                let report = ShardReport {
                    shard_index: shard,
                    best_index: view.global_index(indexed.best_index),
                    best_energy: indexed.outcome.best_energy,
                    evaluations: indexed.outcome.evaluations,
                    stats: backed.stats(),
                    range,
                };
                if recorder.enabled() {
                    recorder.event(
                        scope,
                        "shard_completed",
                        &[
                            ("shard", FieldValue::U64(shard as u64)),
                            ("best_index", FieldValue::U64(report.best_index as u64)),
                            ("best_energy", FieldValue::F64(report.best_energy)),
                            ("evaluations", FieldValue::U64(report.evaluations as u64)),
                            ("hits", FieldValue::U64(report.stats.hits as u64)),
                            ("misses", FieldValue::U64(report.stats.misses as u64)),
                        ],
                    );
                }
                Ok(report)
            })
            .collect::<Result<_, _>>()?;

        let (best_index, best_energy) = merge_shard_bests(reports.iter().map(ShardReport::best))
            .ok_or(CampaignError::EmptySpace)?;
        let stats: CacheStats = reports.iter().map(|report| report.stats).sum();
        if recorder.enabled() {
            recorder.event(
                scope,
                "merged",
                &[
                    ("shards", FieldValue::U64(reports.len() as u64)),
                    ("best_index", FieldValue::U64(best_index as u64)),
                    ("best_energy", FieldValue::F64(best_energy)),
                    ("hits", FieldValue::U64(stats.hits as u64)),
                    ("misses", FieldValue::U64(stats.misses as u64)),
                ],
            );
        }
        store.record_stats(stats);
        store.flush()?;

        let best_config = match materialized {
            Some(mut configs) => configs.swap_remove(best_index),
            None => space
                .config_at(best_index)
                .ok_or(CampaignError::MissingConfig { index: best_index })?,
        };
        Ok(CampaignOutcome {
            best_config,
            best_energy,
            best_index,
            evaluations: reports.iter().map(|report| report.evaluations).sum(),
            stats,
            shards: reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use wd_opt::space::GridSpace;
    use wd_opt::CountingObjective;

    fn bowl(config: &(u32, u32)) -> f64 {
        let dx = config.0 as f64 - 13.0;
        let dy = config.1 as f64 - 5.0;
        dx * dx + dy * dy
    }

    #[test]
    fn sharded_campaign_matches_single_node_for_every_shard_count() {
        let space = GridSpace {
            width: 37,
            height: 23,
        };
        let reference = ParallelEnumeration::new().run(&space, &bowl);
        for shards in [1usize, 2, 3, 4, 7, 16, 1000] {
            let store = MemoryStore::new();
            let outcome = ShardedCampaign::new(shards)
                .with_batch_size(19)
                .run(&space, &bowl, &store)
                .unwrap();
            assert_eq!(
                outcome.best_config, reference.best_config,
                "{shards} shards"
            );
            assert_eq!(
                outcome.best_energy.to_bits(),
                reference.best_energy.to_bits()
            );
            assert_eq!(outcome.evaluations, 37 * 23);
            assert_eq!(outcome.experiments(), 37 * 23);
        }
    }

    #[test]
    fn indexed_spaces_stream_without_materializing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use wd_opt::{InstrumentedSpace, MaterializedOnly, Objective};

        let space = GridSpace {
            width: 25,
            height: 20,
        };

        // an objective that records the largest batch it was ever asked to score —
        // with the streaming driver this bounds the per-worker materialisation
        struct MaxBatch<'a, O>(&'a O, AtomicUsize);
        impl<C, O: Objective<C>> Objective<C> for MaxBatch<'_, O> {
            fn evaluate(&self, config: &C) -> f64 {
                self.1.fetch_max(1, Ordering::Relaxed);
                self.0.evaluate(config)
            }
            fn evaluate_batch(&self, configs: &[C]) -> Vec<f64> {
                self.1.fetch_max(configs.len(), Ordering::Relaxed);
                self.0.evaluate_batch(configs)
            }
        }

        let instrumented = InstrumentedSpace::new(&space);
        let store = MemoryStore::new();
        let objective = MaxBatch(&bowl, AtomicUsize::new(0));
        let batch_size = 32;
        let outcome = ShardedCampaign::new(4)
            .with_batch_size(batch_size)
            .run(&instrumented, &objective, &store)
            .unwrap();

        assert_eq!(
            instrumented.enumerate_calls(),
            0,
            "a lazy campaign must never materialise the space"
        );
        // every configuration streamed by index, plus one re-materialisation of each
        // shard's local best and one of the global winner
        assert_eq!(instrumented.config_at_calls(), 500 + 4 + 1);
        assert!(objective.1.load(Ordering::Relaxed) <= batch_size);

        // and the result is bit-identical to the forced-materialization fallback
        let hidden = MaterializedOnly::new(&space);
        let reference = ShardedCampaign::new(4)
            .with_batch_size(batch_size)
            .run(&hidden, &bowl, &MemoryStore::new())
            .unwrap();
        assert_eq!(outcome.best_config, reference.best_config);
        assert_eq!(outcome.best_index, reference.best_index);
        assert_eq!(
            outcome.best_energy.to_bits(),
            reference.best_energy.to_bits()
        );
    }

    #[test]
    fn shard_reports_partition_the_space() {
        let space = GridSpace {
            width: 16,
            height: 9,
        };
        let store = MemoryStore::new();
        let outcome = ShardedCampaign::new(5).run(&space, &bowl, &store).unwrap();
        assert_eq!(outcome.shards.len(), 5);
        let mut next = 0usize;
        for (index, report) in outcome.shards.iter().enumerate() {
            assert_eq!(report.shard_index, index);
            assert_eq!(report.range.start, next);
            assert!(report.range.contains(&report.best_index));
            assert_eq!(report.evaluations, report.range.len());
            next = report.range.end;
        }
        assert_eq!(next, 16 * 9);
    }

    #[test]
    fn warm_store_resumes_with_zero_evaluations() {
        let space = GridSpace {
            width: 12,
            height: 12,
        };
        let store = MemoryStore::new();
        let campaign = ShardedCampaign::new(4);

        let counting = CountingObjective::new(&bowl);
        let cold = campaign.run(&space, &counting, &store).unwrap();
        assert_eq!(counting.evaluations(), 144);
        assert_eq!(
            cold.stats,
            CacheStats {
                hits: 0,
                misses: 144
            }
        );

        // a fresh objective wrapper proves the store, not the wrapper, remembers
        let counting = CountingObjective::new(&bowl);
        let warm = campaign.run(&space, &counting, &store).unwrap();
        assert_eq!(
            counting.evaluations(),
            0,
            "warm campaigns re-evaluate nothing"
        );
        assert_eq!(
            warm.stats,
            CacheStats {
                hits: 144,
                misses: 0
            }
        );
        assert_eq!(warm.best_config, cold.best_config);
        assert_eq!(warm.best_energy.to_bits(), cold.best_energy.to_bits());
        assert_eq!(warm.best_index, cold.best_index);

        // the store audit trail accumulated both runs
        assert_eq!(
            store.recorded_stats(),
            CacheStats {
                hits: 144,
                misses: 144
            }
        );
    }

    #[test]
    fn partially_warm_store_evaluates_only_the_missing_configurations() {
        let space = GridSpace {
            width: 10,
            height: 10,
        };
        let store = MemoryStore::new();
        // pre-record half the space with the true energies
        let configs = space.enumerate().unwrap();
        for config in configs.iter().take(50) {
            store.record(config, bowl(config));
        }
        let counting = CountingObjective::new(&bowl);
        let outcome = ShardedCampaign::new(3)
            .run(&space, &counting, &store)
            .unwrap();
        assert_eq!(counting.evaluations(), 50);
        assert_eq!(
            outcome.stats,
            CacheStats {
                hits: 50,
                misses: 50
            }
        );
        let reference = ParallelEnumeration::new().run(&space, &bowl);
        assert_eq!(outcome.best_config, reference.best_config);
    }

    #[test]
    fn merge_is_shard_completion_order_independent() {
        let space = GridSpace {
            width: 9,
            height: 8,
        };
        // a plateau with many global ties exercises the earliest-index rule
        let plateau = |config: &(u32, u32)| f64::from((config.0 + config.1).is_multiple_of(3));
        let store = MemoryStore::new();
        let outcome = ShardedCampaign::new(6)
            .run(&space, &plateau, &store)
            .unwrap();

        let mut bests: Vec<(usize, f64)> = outcome.shards.iter().map(ShardReport::best).collect();
        // try every rotation and the reverse — all must merge to the same winner
        for rotation in 0..bests.len() {
            bests.rotate_left(1);
            assert_eq!(
                merge_shard_bests(bests.iter().copied()),
                Some((outcome.best_index, outcome.best_energy)),
                "rotation {rotation}"
            );
        }
        bests.reverse();
        assert_eq!(
            merge_shard_bests(bests.iter().copied()),
            Some((outcome.best_index, outcome.best_energy))
        );
        let reference = ParallelEnumeration::new().run(&space, &plateau);
        assert_eq!(outcome.best_config, reference.best_config);
    }

    #[test]
    fn observed_campaigns_are_bit_identical_and_publish_lifecycle_events() {
        let space = GridSpace {
            width: 21,
            height: 14,
        };
        let registry = wd_obs::Registry::new();
        let unobserved = ShardedCampaign::new(6)
            .run(&space, &bowl, &MemoryStore::new())
            .unwrap();
        let observed = ShardedCampaign::new(6)
            .run_observed(&space, &bowl, &MemoryStore::new(), &registry, "campaign")
            .unwrap();
        assert_eq!(observed.best_config, unobserved.best_config);
        assert_eq!(
            observed.best_energy.to_bits(),
            unobserved.best_energy.to_bits()
        );
        assert_eq!(observed.best_index, unobserved.best_index);
        assert_eq!(observed.shards, unobserved.shards);

        // one started/completed pair per shard, one merge
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.events.get("campaign/shard_started"), Some(&6));
        assert_eq!(snapshot.events.get("campaign/shard_completed"), Some(&6));
        assert_eq!(snapshot.events.get("campaign/merged"), Some(&1));
    }

    #[test]
    fn non_enumerable_spaces_are_rejected() {
        use rand::rngs::StdRng;
        struct Opaque;
        impl SearchSpace for Opaque {
            type Config = u8;
            fn random(&self, _rng: &mut StdRng) -> u8 {
                0
            }
            fn neighbor(&self, c: &u8, _rng: &mut StdRng) -> u8 {
                *c
            }
        }
        let store: MemoryStore<u8> = MemoryStore::new();
        let error = ShardedCampaign::new(2)
            .run(&Opaque, &|c: &u8| *c as f64, &store)
            .unwrap_err();
        assert!(matches!(error, CampaignError::NotEnumerable));
    }

    #[test]
    fn empty_merges_and_empty_spaces_surface_as_errors() {
        assert_eq!(merge_shard_bests(std::iter::empty()), None);
        let space = GridSpace {
            width: 0,
            height: 5,
        };
        let store = MemoryStore::new();
        let error = ShardedCampaign::new(2)
            .run(&space, &bowl, &store)
            .unwrap_err();
        assert!(matches!(error, CampaignError::EmptySpace));
    }
}
