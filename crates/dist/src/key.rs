//! Stable textual encoding of configurations, the key format of the persistent stores.
//!
//! A [`ConfigKey`] maps a configuration to a single-line string that (a) is unique per
//! configuration, (b) survives a write/read round trip unchanged, and (c) is safe to
//! embed verbatim inside a JSON string.  The on-disk [`crate::JsonlStore`] keys its
//! records by this encoding, so two processes (or two runs of the same process) agree
//! on which configurations have already been evaluated.

/// A configuration type with a stable, JSON-string-safe textual key.
///
/// # Contract
///
/// * `decode_key(&c.encode_key()) == Some(c)` for every configuration `c`;
/// * the encoding contains no `"`, `\` or control characters (it is embedded in a JSON
///   string without escaping) and no newlines (one record per line);
/// * the encoding is *stable*: it must not change between runs, or persisted campaigns
///   would silently lose their warm state.
pub trait ConfigKey: Sized {
    /// Encode this configuration as a stable single-line key.
    fn encode_key(&self) -> String;

    /// Decode a key produced by [`ConfigKey::encode_key`]; `None` for foreign input.
    fn decode_key(key: &str) -> Option<Self>;
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl ConfigKey for $t {
            fn encode_key(&self) -> String {
                self.to_string()
            }

            fn decode_key(key: &str) -> Option<Self> {
                key.parse().ok()
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Pairs encode as `"a,b"` — enough for grid-style test spaces, including nested
/// pairs on either side.
///
/// Decoding tries every comma as the split point and returns the first one both
/// halves accept.  A naive `split_once` breaks the round-trip contract for
/// left-nested pairs: `((1, 2), 3)` encodes as `"1,2,3"`, and splitting at the
/// *first* comma hands `"1"` to the `(u32, u32)` decoder, which fails.  For the
/// integer-based configurations this trait targets, the number of commas each side
/// consumes is fixed by its type structure, so at most one split point can decode —
/// the scan is unambiguous.
impl<A: ConfigKey, B: ConfigKey> ConfigKey for (A, B) {
    fn encode_key(&self) -> String {
        format!("{},{}", self.0.encode_key(), self.1.encode_key())
    }

    fn decode_key(key: &str) -> Option<Self> {
        key.match_indices(',').find_map(|(split, _)| {
            let a = A::decode_key(&key[..split])?;
            let b = B::decode_key(&key[split + 1..])?;
            Some((a, b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_keys_round_trip() {
        for value in [0u32, 1, 17, u32::MAX] {
            assert_eq!(u32::decode_key(&value.encode_key()), Some(value));
        }
        assert_eq!(i64::decode_key(&(-42i64).encode_key()), Some(-42));
        assert_eq!(u32::decode_key("not a number"), None);
    }

    #[test]
    fn pair_keys_round_trip() {
        let config = (13u32, 5u32);
        let key = config.encode_key();
        assert_eq!(key, "13,5");
        assert_eq!(<(u32, u32)>::decode_key(&key), Some(config));
        assert_eq!(<(u32, u32)>::decode_key("13"), None);
        assert_eq!(<(u32, u32)>::decode_key("13,x"), None);
    }

    #[test]
    fn nested_pair_keys_round_trip() {
        // Regression: the old decoder split at the *first* comma, so the left-nested
        // key "1,2,3" handed "1" to the (u32, u32) decoder and returned None,
        // violating the trait's own round-trip contract.
        let left_nested = ((1u32, 2u32), 3u32);
        let key = left_nested.encode_key();
        assert_eq!(key, "1,2,3");
        assert_eq!(<((u32, u32), u32)>::decode_key(&key), Some(left_nested));

        // right-nested pairs keep working
        let right_nested = (1u32, (2u32, 3u32));
        assert_eq!(
            <(u32, (u32, u32))>::decode_key(&right_nested.encode_key()),
            Some(right_nested)
        );

        // and doubly nested grids round-trip too
        let grid2 = ((7u32, 8u32), (9u32, 10u32));
        assert_eq!(
            <((u32, u32), (u32, u32))>::decode_key(&grid2.encode_key()),
            Some(grid2)
        );
        let deep = (((1u32, 2u32), 3u32), 4u32);
        assert_eq!(
            <(((u32, u32), u32), u32)>::decode_key(&deep.encode_key()),
            Some(deep)
        );

        // foreign input with the wrong arity still decodes to None
        assert_eq!(<((u32, u32), u32)>::decode_key("1,2"), None);
        assert_eq!(<((u32, u32), u32)>::decode_key("1,2,3,4"), None);
    }

    #[test]
    fn keys_are_json_string_safe() {
        for key in [
            (13u32, 5u32).encode_key(),
            u64::MAX.encode_key(),
            (-7i32).encode_key(),
        ] {
            assert!(!key.contains(['"', '\\', '\n', '\r']));
        }
    }
}
