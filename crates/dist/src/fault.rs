//! Deterministic fault injection for supervised campaigns.
//!
//! A [`FaultPlan`] is an explicit, finite schedule of [`FaultEvent`]s: *worker slot
//! `s`, on its `a`-th attempt, fails after scanning `b` batches, in this way*.  The
//! supervisor ([`crate::supervisor`]) consults the plan at every attempt and routes
//! the scheduled failure through the matching wrapper — [`FaultyObjective`] for
//! evaluation errors, [`FaultyStore`] for torn writes — so every fault fires at a
//! reproducible point of the scan, independent of thread interleaving.
//!
//! Because the schedule is finite and every attempt consumes at most one event
//! (attempt counters only move forward), a supervised campaign under *any* plan
//! performs finitely many failures and then converges; the store-first scan makes
//! the recovery idempotent (persisted keys are never re-evaluated).
//!
//! [`FaultPlan::random`] derives a schedule from a seed with an embedded
//! splitmix64 generator, so chaos runs are reproducible from a single integer.
//! Plans round-trip through a one-line-per-event text format
//! (`shard:attempt:after_batches:kind`, see [`FaultPlan::parse`]) for chaos-run
//! artifacts and hand-written scenarios.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use wd_opt::Objective;

use crate::store::ResultStore;

/// The failure modes the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The objective fails to produce energies for a batch (the batch is *not*
    /// recorded; the attempt aborts before the store sees anything).
    EvalError,
    /// The worker dies between batches: the attempt aborts cleanly, everything
    /// recorded so far stays persisted.
    ShardDeath,
    /// The worker stalls and stops renewing its lease; it observes its own lease
    /// expiry on the logical clock and fences itself off.
    Stall,
    /// The store write of a batch is torn: all but the last record land, a
    /// truncated unparseable line is durably appended in its place, and the
    /// attempt aborts (a crash mid-`write(2)`).
    TornWrite,
}

impl FaultKind {
    const ALL: [FaultKind; 4] = [
        FaultKind::EvalError,
        FaultKind::ShardDeath,
        FaultKind::Stall,
        FaultKind::TornWrite,
    ];

    /// Stable text code used by the plan's line format and by events.
    pub fn code(self) -> &'static str {
        match self {
            FaultKind::EvalError => "eval-error",
            FaultKind::ShardDeath => "death",
            FaultKind::Stall => "stall",
            FaultKind::TornWrite => "torn-write",
        }
    }

    pub(crate) fn from_code(code: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|kind| kind.code() == code)
    }
}

/// One scheduled failure: worker slot `slot`, on its `attempt`-th attempt (a
/// per-slot counter covering its own range *and* any ranges it steals), fails after
/// completing `after_batches` scan batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Executing worker slot the fault targets (the plan position of the worker,
    /// not of the range it happens to be scanning).
    pub slot: usize,
    /// The slot's cumulative attempt counter value at which the fault fires.
    pub attempt: usize,
    /// Number of scan batches the attempt completes before the fault fires (for
    /// [`FaultKind::EvalError`]: evaluation batches, i.e. batches with at least one
    /// unpersisted configuration).
    pub after_batches: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}:{}",
            self.slot,
            self.attempt,
            self.after_batches,
            self.kind.code()
        )
    }
}

/// A finite, reproducible schedule of [`FaultEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// splitmix64: a tiny, high-quality, dependency-free PRNG step — good enough to
/// scatter fault kinds and offsets, and stable across platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: a supervised run under it behaves exactly like the plain run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from explicit events.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Derive a reproducible plan from `seed`: each of the `slots` workers gets
    /// between 0 and `max_faults_per_slot` consecutive failing attempts (attempts
    /// `0..k`, so every scheduled event actually fires before the slot's first
    /// success), each failing after 0 to `max_after_batches` scan batches with a
    /// seed-chosen [`FaultKind`].
    pub fn random(
        seed: u64,
        slots: usize,
        max_faults_per_slot: usize,
        max_after_batches: usize,
    ) -> Self {
        let mut state = seed ^ 0x77d1_5e01_5f4a_7c15;
        let mut events = Vec::new();
        for slot in 0..slots {
            let faults = if max_faults_per_slot == 0 {
                0
            } else {
                (splitmix64(&mut state) % (max_faults_per_slot as u64 + 1)) as usize
            };
            for attempt in 0..faults {
                let kind = FaultKind::ALL[(splitmix64(&mut state) % 4) as usize];
                let after_batches =
                    (splitmix64(&mut state) % (max_after_batches as u64 + 1)) as usize;
                events.push(FaultEvent {
                    slot,
                    attempt,
                    after_batches,
                    kind,
                });
            }
        }
        FaultPlan { events }
    }

    /// The fault scheduled for `slot`'s `attempt`-th attempt, if any.
    pub fn fate(&self, slot: usize, attempt: usize) -> Option<FaultEvent> {
        self.events
            .iter()
            .find(|event| event.slot == slot && event.attempt == attempt)
            .copied()
    }

    /// Every scheduled event, in plan order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parse the text format written by [`FaultPlan`]'s `Display`: one
    /// `slot:attempt:after_batches:kind` event per line, blank lines and `#`
    /// comments ignored.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(':');
            let event = (|| {
                let slot = parts.next()?.parse().ok()?;
                let attempt = parts.next()?.parse().ok()?;
                let after_batches = parts.next()?.parse().ok()?;
                let kind = FaultKind::from_code(parts.next()?)?;
                if parts.next().is_some() {
                    return None;
                }
                Some(FaultEvent {
                    slot,
                    attempt,
                    after_batches,
                    kind,
                })
            })()
            .ok_or_else(|| format!("line {}: malformed fault event {line:?}", number + 1))?;
            events.push(event);
        }
        Ok(FaultPlan { events })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        Ok(())
    }
}

/// An [`Objective`] wrapper that injects one scheduled [`FaultKind::EvalError`].
///
/// Evaluation goes through [`FaultyObjective::try_evaluate_batch`]: on the
/// scheduled evaluation batch the wrapper fails *before* touching the inner
/// objective, so nothing is computed and nothing can be recorded — exactly the
/// footprint of an evaluation backend erroring out.  All other batches (and plans
/// without an eval-error for this attempt) pass straight through.
pub struct FaultyObjective<'a, O: ?Sized> {
    inner: &'a O,
    fault: Option<FaultEvent>,
    eval_batches: AtomicUsize,
}

impl<'a, O: ?Sized> FaultyObjective<'a, O> {
    /// Wrap `inner` for one attempt; `fault` is that attempt's scheduled event (any
    /// non-`EvalError` kind is ignored here — the supervisor and the store wrapper
    /// handle those).
    pub fn new(inner: &'a O, fault: Option<FaultEvent>) -> Self {
        FaultyObjective {
            inner,
            fault: fault.filter(|event| event.kind == FaultKind::EvalError),
            eval_batches: AtomicUsize::new(0),
        }
    }

    /// Evaluate a batch, or fail if this is the scheduled evaluation batch.
    ///
    /// # Errors
    ///
    /// Returns [`FaultKind::EvalError`] when the injected fault fires.
    pub fn try_evaluate_batch<C>(&self, configs: &[C]) -> Result<Vec<f64>, FaultKind>
    where
        O: Objective<C>,
    {
        let batch = self.eval_batches.fetch_add(1, Ordering::Relaxed);
        if let Some(event) = self.fault {
            if batch == event.after_batches {
                return Err(FaultKind::EvalError);
            }
        }
        Ok(self.inner.evaluate_batch(configs))
    }
}

/// A [`ResultStore`] wrapper that injects one scheduled [`FaultKind::TornWrite`].
///
/// On the scheduled record batch the wrapper persists every record *except the
/// last*, asks the inner store to durably append a torn (truncated, unparseable)
/// line in its place ([`ResultStore::inject_torn_write`]), and trips a flag the
/// supervisor checks to abort the attempt — the footprint of a worker crashing in
/// the middle of `write(2)`.  The lost record is simply absent, so the retry
/// re-evaluates exactly that configuration; the torn line is what
/// [`crate::JsonlStore::open_recovering`] later quarantines.
pub struct FaultyStore<'a, R: ?Sized> {
    inner: &'a R,
    fault: Option<FaultEvent>,
    record_batches: AtomicUsize,
    tripped: AtomicBool,
}

impl<'a, R: ?Sized> FaultyStore<'a, R> {
    /// Wrap `store` for one attempt; `fault` is that attempt's scheduled event (any
    /// non-`TornWrite` kind is ignored here).
    pub fn new(inner: &'a R, fault: Option<FaultEvent>) -> Self {
        FaultyStore {
            inner,
            fault: fault.filter(|event| event.kind == FaultKind::TornWrite),
            record_batches: AtomicUsize::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// Whether the scheduled torn write has fired (checked by the supervisor after
    /// every recorded batch).
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }
}

impl<C, R> ResultStore<C> for FaultyStore<'_, R>
where
    R: ResultStore<C> + ?Sized,
{
    fn lookup(&self, config: &C) -> Option<f64> {
        self.inner.lookup(config)
    }

    fn lookup_batch(&self, configs: &[C]) -> Vec<Option<f64>> {
        self.inner.lookup_batch(configs)
    }

    fn record(&self, config: &C, energy: f64) {
        self.inner.record(config, energy);
    }

    fn record_batch(&self, configs: &[C], energies: &[f64]) {
        let batch = self.record_batches.fetch_add(1, Ordering::Relaxed);
        if let Some(event) = self.fault {
            if batch == event.after_batches && !configs.is_empty() {
                let keep = configs.len() - 1;
                self.inner.record_batch(&configs[..keep], &energies[..keep]);
                self.inner.inject_torn_write("injected-torn-write");
                self.tripped.store(true, Ordering::Relaxed);
                return;
            }
        }
        self.inner.record_batch(configs, energies);
    }

    fn record_stats(&self, stats: wd_opt::CacheStats) {
        self.inner.record_stats(stats);
    }

    fn recorded_stats(&self) -> wd_opt::CacheStats {
        self.inner.recorded_stats()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn flush(&self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;

    #[test]
    fn random_plans_are_reproducible_and_fire_consecutively() {
        let a = FaultPlan::random(42, 6, 3, 5);
        let b = FaultPlan::random(42, 6, 3, 5);
        assert_eq!(a, b);
        let c = FaultPlan::random(43, 6, 3, 5);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
        // per slot, scheduled attempts are exactly 0..k so each event fires
        for slot in 0..6 {
            let mut attempts: Vec<usize> = a
                .events()
                .iter()
                .filter(|event| event.slot == slot)
                .map(|event| event.attempt)
                .collect();
            attempts.sort_unstable();
            assert_eq!(attempts, (0..attempts.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn plans_round_trip_through_the_text_format() {
        let plan = FaultPlan::random(7, 4, 2, 3);
        let text = plan.to_string();
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
        let commented = format!("# chaos seed 7\n\n{text}");
        assert_eq!(FaultPlan::parse(&commented).unwrap(), plan);
        assert!(FaultPlan::parse("1:2:3:not-a-kind").is_err());
        assert!(FaultPlan::parse("1:2:3").is_err());
        assert!(FaultPlan::parse("1:2:3:stall:extra").is_err());
    }

    #[test]
    fn fate_matches_slot_and_attempt() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            slot: 2,
            attempt: 1,
            after_batches: 0,
            kind: FaultKind::Stall,
        }]);
        assert_eq!(plan.fate(2, 1).map(|e| e.kind), Some(FaultKind::Stall));
        assert_eq!(plan.fate(2, 0), None);
        assert_eq!(plan.fate(1, 1), None);
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 1);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn faulty_objective_fails_only_the_scheduled_eval_batch() {
        let objective = |c: &u32| f64::from(*c) * 2.0;
        let event = FaultEvent {
            slot: 0,
            attempt: 0,
            after_batches: 1,
            kind: FaultKind::EvalError,
        };
        let faulty = FaultyObjective::new(&objective, Some(event));
        assert_eq!(faulty.try_evaluate_batch(&[1, 2]).unwrap(), vec![2.0, 4.0]);
        assert_eq!(
            faulty.try_evaluate_batch(&[3]).unwrap_err(),
            FaultKind::EvalError
        );
        // batches after the scheduled one pass again (the attempt already aborted
        // in practice, but the wrapper itself is single-shot)
        assert!(faulty.try_evaluate_batch(&[4]).is_ok());

        // non-eval faults are ignored by the objective wrapper
        let stall = FaultEvent {
            kind: FaultKind::Stall,
            ..event
        };
        let faulty = FaultyObjective::new(&objective, Some(stall));
        assert!(faulty.try_evaluate_batch(&[1]).is_ok());
        assert!(faulty.try_evaluate_batch(&[1]).is_ok());
    }

    #[test]
    fn faulty_store_tears_the_last_record_of_the_scheduled_batch() {
        let store: MemoryStore<u32> = MemoryStore::new();
        let event = FaultEvent {
            slot: 0,
            attempt: 0,
            after_batches: 0,
            kind: FaultKind::TornWrite,
        };
        let faulty = FaultyStore::new(&store, Some(event));
        faulty.record_batch(&[1, 2, 3], &[1.0, 2.0, 3.0]);
        assert!(faulty.tripped());
        // the torn (last) record never landed; the prefix did
        assert_eq!(store.lookup(&1), Some(1.0));
        assert_eq!(store.lookup(&2), Some(2.0));
        assert_eq!(store.lookup(&3), None);

        // without a scheduled torn write everything is forwarded verbatim
        let clean: MemoryStore<u32> = MemoryStore::new();
        let passthrough = FaultyStore::new(&clean, None);
        passthrough.record_batch(&[7, 8], &[7.0, 8.0]);
        assert!(!passthrough.tripped());
        assert_eq!(clean.len(), 2);
    }
}
