//! Campaign-level errors: everything that can stop a sharded campaign from
//! producing a merged result.
//!
//! The coordinator used to panic on these conditions; they are ordinary runtime
//! situations for a long-lived service (a caller handing over the wrong kind of
//! space, a full disk under the result store), so they surface as values instead.

use std::fmt;
use std::io;
use std::ops::Range;

/// Why a sharded campaign could not produce (or persist) a merged result.
#[derive(Debug)]
pub enum CampaignError {
    /// The search space reported zero configurations — there is nothing to merge.
    EmptySpace,
    /// The search space is neither indexed ([`wd_opt::SearchSpace::space_len`]) nor
    /// enumerable ([`wd_opt::SearchSpace::enumerate`]); a sharded scan needs one of
    /// the two.
    NotEnumerable,
    /// The space promised `space_len()` configurations but `config_at(index)`
    /// returned `None` inside that range — a contract violation in the space
    /// implementation.
    MissingConfig {
        /// The global enumeration index that failed to materialise.
        index: usize,
    },
    /// Flushing the result store failed.  A persistent campaign that cannot persist
    /// is not resumable, so the error is surfaced rather than swallowed (the merged
    /// result would silently re-evaluate everything next run).
    Store(io::Error),
    /// A supervised campaign ran out of retry budget everywhere: this index range
    /// was abandoned by its shard, every work-stealer, and the coordinator's final
    /// drain.
    RangeAbandoned {
        /// The global enumeration-index range left uncovered.
        range: Range<usize>,
    },
    /// The multi-process transport failed outside the store itself: spawning a
    /// worker process, writing a lease or manifest file, or the campaign not
    /// settling within its wall-clock budget.
    Transport(io::Error),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::EmptySpace => write!(f, "cannot run a campaign over an empty space"),
            CampaignError::NotEnumerable => {
                write!(f, "sharded campaigns require an enumerable search space")
            }
            CampaignError::MissingConfig { index } => write!(
                f,
                "search space broke its indexing contract: space_len() covers index \
                 {index} but config_at({index}) returned None"
            ),
            CampaignError::Store(error) => {
                write!(f, "failed to flush the campaign result store: {error}")
            }
            CampaignError::RangeAbandoned { range } => write!(
                f,
                "index range {}..{} was abandoned after exhausting every retry and \
                 work-stealing path",
                range.start, range.end
            ),
            CampaignError::Transport(error) => {
                write!(f, "campaign process transport failed: {error}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Store(error) | CampaignError::Transport(error) => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for CampaignError {
    fn from(error: io::Error) -> Self {
        CampaignError::Store(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_condition() {
        assert!(CampaignError::EmptySpace.to_string().contains("empty"));
        assert!(CampaignError::NotEnumerable
            .to_string()
            .contains("enumerable"));
        assert!(CampaignError::MissingConfig { index: 7 }
            .to_string()
            .contains("config_at(7)"));
        let wrapped = CampaignError::from(io::Error::other("disk full"));
        assert!(wrapped.to_string().contains("disk full"));
        assert!(std::error::Error::source(&wrapped).is_some());
        assert!(CampaignError::RangeAbandoned { range: 3..9 }
            .to_string()
            .contains("3..9"));
        let transport = CampaignError::Transport(io::Error::other("spawn refused"));
        assert!(transport.to_string().contains("transport"));
        assert!(transport.to_string().contains("spawn refused"));
        assert!(std::error::Error::source(&transport).is_some());
    }
}
