//! # wd-dist
//!
//! Sharded multi-node campaign coordinator with a persistent result store, the layer
//! between search ([`wd_opt`]) and evaluation for production-scale configuration
//! sweeps.
//!
//! The paper's reference methods enumerate the whole configuration grid on one
//! machine.  This crate scales that campaign out and makes it durable:
//!
//! * [`ShardedCampaign`] cuts any enumerable [`wd_opt::SearchSpace`] into
//!   deterministic contiguous shards ([`wd_opt::ShardPlan`]), evaluates each shard
//!   concurrently — one task per shard, each standing in for a node — through the
//!   batched [`wd_opt::ParallelEnumeration`] path, and merges per-shard bests with
//!   the lowest-energy/earliest-global-index rule ([`wd_opt::better_indexed`]).  The
//!   merged result is **bit-identical** to a single-node run for every shard count,
//!   batch size and shard completion order.
//! * [`ResultStore`] persists every `(configuration, energy)` pair as it is produced
//!   plus the merged [`wd_opt::CacheStats`] of each run.  [`JsonlStore`] is the
//!   on-disk implementation (append-only JSON lines, exact IEEE-754 round trip,
//!   tolerant of truncated tails), [`MemoryStore`] the in-process one.  A killed or
//!   repeated campaign resumes against a warm store with **zero** re-evaluations.
//! * [`ShardedCampaign::run_supervised`] adds fault tolerance on top: per-shard
//!   leases on a logical clock, capped-exponential-backoff retries, work-stealing
//!   of dead shards and idempotent store-first recovery, with deterministic fault
//!   injection ([`FaultPlan`]) to prove the whole stack converges to the
//!   bit-identical fault-free answer.  [`JsonlStore::open_recovering`] quarantines
//!   corrupt lines instead of dropping them, and [`JsonlStore::rollback`] restores
//!   any retained compaction generation.
//!
//! ## Example
//!
//! ```
//! use wd_dist::{MemoryStore, ShardedCampaign};
//! use wd_opt::space::GridSpace;
//! use wd_opt::{CountingObjective, ParallelEnumeration};
//!
//! let space = GridSpace { width: 20, height: 10 };
//! let objective = |c: &(u32, u32)| (c.0 as f64 - 7.0).abs() + (c.1 as f64 - 3.0).abs();
//!
//! // 4 "nodes", one persistent store
//! let store = MemoryStore::new();
//! let counting = CountingObjective::new(&objective);
//! let campaign = ShardedCampaign::new(4);
//! let outcome = campaign.run(&space, &counting, &store).unwrap();
//!
//! // bit-identical to the single-node scan
//! let reference = ParallelEnumeration::new().run(&space, &objective);
//! assert_eq!(outcome.best_config, reference.best_config);
//! assert_eq!(counting.evaluations(), 200);
//!
//! // a repeated campaign is answered entirely from the store
//! let counting = CountingObjective::new(&objective);
//! let resumed = campaign.run(&space, &counting, &store).unwrap();
//! assert_eq!(counting.evaluations(), 0);
//! assert_eq!(resumed.best_config, reference.best_config);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coordinator;
pub mod error;
pub mod fault;
pub mod key;
pub mod proc;
pub mod store;
pub mod supervisor;
mod sync;

pub use coordinator::{
    merge_shard_bests, CampaignOutcome, ShardReport, ShardedCampaign, StoreBackedObjective,
};
pub use error::CampaignError;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultyObjective, FaultyStore};
pub use key::ConfigKey;
pub use proc::{
    ProcCampaign, ProcManifest, ProcOutcome, ProcReport, WorkDir, WorkloadSpec,
    PROC_MANIFEST_VERSION,
};
pub use store::{
    read_result_records, CompactionReport, JsonlStore, MemoryStore, RecoveryReport, ResultStore,
    StoreIoStats, DEFAULT_RETAINED_GENERATIONS, STORE_SCHEMA_VERSION,
};
pub use supervisor::{
    AttemptRecord, FailureReason, RetryPolicy, SupervisedOutcome, SupervisionReport,
};
