//! Multi-process distributed campaigns: a coordinator that spawns real worker
//! **processes** (the `wd-worker` bin target), hands each one a shard of the
//! enumeration range, and reconciles exclusively through the on-disk file
//! protocol below.  This is the process-transport half of the fault-tolerance
//! story: where [`crate::supervisor`] simulates worker failure on a logical
//! clock inside one process, this module survives a real `kill -9` of any
//! worker at any point.
//!
//! ## On-disk protocol (everything lives under one work directory)
//!
//! * `manifest` — campaign description (workload, slot count, batch size,
//!   total range), header [`PROC_MANIFEST_VERSION`].  Rewritten atomically;
//!   the coordinator re-reads `slots` every poll, so rewriting the manifest
//!   mid-campaign grows or shrinks the worker fleet (**elastic shard counts**).
//! * `merged.jsonl` — the authoritative [`JsonlStore`], opened **only** by the
//!   coordinator (the store's single-writer lock enforces this).  Workers read
//!   it lock-free at startup to learn which keys are already persisted.
//! * `leases/slot-<i>.lease` — the coordinator-written grant for a slot.  Its
//!   `gen` line is the **fencing token**: a worker that wakes up after the
//!   coordinator has re-issued the slot sees a generation mismatch and
//!   abandons ([`EXIT_FENCED`]) without writing anything further.
//! * `leases/slot-<i>-g<g>.beat` — the worker's heartbeat (batches completed),
//!   scoped to slot *and* generation so a zombie's beats never refresh the
//!   replacement's lease.
//! * `segments/seg-<i>-g<g>.jsonl` — the worker's private append log, one per
//!   attempt, so no two processes ever append to the same JSONL file.  The
//!   coordinator **salvages** every segment (clean exit or not) through the
//!   order-independent merge: only keys absent from `merged.jsonl` are copied,
//!   so replayed or duplicated segments are harmless.
//! * `segments/slot-<i>-g<g>.done` — commit marker a worker writes (atomic
//!   rename) after flushing its segment; exit 0 without it is still a failure.
//! * `logs/slot-<i>-g<g>.log` — the worker's stdout/stderr, and `logs/pids` —
//!   one `slot generation pid` line per spawn (the chaos harness reads this to
//!   aim its `kill -9`).
//!
//! ## Why a fenced zombie cannot corrupt the campaign
//!
//! A worker re-reads its grant **before every batch** and writes only to its
//! own generation-scoped segment.  After the coordinator fences a stalled
//! worker (bumps the grant generation), the zombie's next fence check fails
//! and it exits without another write.  The one benign race — a fence landing
//! mid-batch — at worst adds records to the zombie's *own* segment; salvaging
//! that segment is still safe because every process computes the same
//! deterministic energy for a key and the merge only fills absent keys.
//!
//! The final [`CampaignOutcome`] is produced by re-running the in-process
//! [`ShardedCampaign`] over the merged store with a [`CountingObjective`]:
//! bit-identical to a fault-free single-process run by construction, and the
//! counter proves how many configurations had to be re-evaluated (zero when
//! every batch landed; bounded by the interrupted batches otherwise).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use wd_obs::{FieldValue, NoopRecorder, Recorder};
use wd_opt::space::GridSpace;
use wd_opt::{CountingObjective, Objective, SearchSpace, ShardPlan};

use crate::coordinator::{CampaignOutcome, ShardedCampaign};
use crate::error::CampaignError;
use crate::fault::{FaultKind, FaultPlan};
use crate::key::ConfigKey;
use crate::store::{read_result_records, JsonlStore, ResultStore};
use crate::supervisor::RetryPolicy;

/// Schema header of the campaign manifest file.
pub const PROC_MANIFEST_VERSION: &str = "wd-dist-proc-manifest/v1";

/// Work-queue decomposition factor: the coordinator carves the space into
/// `slots * RANGES_PER_SLOT` ranges rather than one range per slot, so freed
/// slots (including slots added by an elastic manifest rewrite) always have
/// queued ranges to pull, and a lost attempt forfeits a quarter-shard, not a
/// whole shard.
pub const RANGES_PER_SLOT: usize = 4;

/// Environment variable carrying a worker's injected fault:
/// `<kind-code>:<after-batches>[:<stall-ms>]` using [`FaultKind::code`] codes.
pub const WORKER_FAULT_ENV: &str = "WD_WORKER_FAULT";

/// Environment variable overriding where the coordinator finds the `wd-worker`
/// binary (tests pass `env!("CARGO_BIN_EXE_wd-worker")` instead).
pub const WORKER_BIN_ENV: &str = "WD_WORKER_BIN";

/// Worker exit: range completed and the done marker is durable.
pub const EXIT_OK: i32 = 0;
/// Worker exit: unusable arguments or a broken work directory.
pub const EXIT_USAGE: i32 = 2;
/// Worker exit: the grant's fencing token moved on — the worker abandoned its
/// range without writing anything after the mismatch.
pub const EXIT_FENCED: i32 = 3;
/// Worker exit: an injected evaluation error aborted the attempt before the
/// failing batch was recorded.
pub const EXIT_EVAL_ERROR: i32 = 4;

/// A self-describing workload a worker process can reconstruct from one line of
/// the manifest — the process transport cannot ship closures, so the objective
/// must be nameable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Quadratic bowl over the grid `{0..width} x {0..height}`: energy
    /// `(x - center_x)² + (y - center_y)²`, minimised at the center.  Pure
    /// `f64` arithmetic, so every process computes bit-identical energies; the
    /// bowl's natural energy ties exercise the earliest-index merge rule.
    GridBowl {
        /// Exclusive upper bound of the first coordinate.
        width: u32,
        /// Exclusive upper bound of the second coordinate.
        height: u32,
        /// First coordinate of the minimum.
        center_x: u32,
        /// Second coordinate of the minimum.
        center_y: u32,
    },
}

impl WorkloadSpec {
    /// The search space this workload scans.
    pub fn space(&self) -> GridSpace {
        match *self {
            WorkloadSpec::GridBowl { width, height, .. } => GridSpace { width, height },
        }
    }

    /// One-line text form carried by the manifest (`grid-bowl/WxH/CX,CY`).
    pub fn encode(&self) -> String {
        match *self {
            WorkloadSpec::GridBowl {
                width,
                height,
                center_x,
                center_y,
            } => format!("grid-bowl/{width}x{height}/{center_x},{center_y}"),
        }
    }

    /// Parse [`WorkloadSpec::encode`] output.
    pub fn decode(text: &str) -> Option<WorkloadSpec> {
        let rest = text.strip_prefix("grid-bowl/")?;
        let (dims, center) = rest.split_once('/')?;
        let (width, height) = dims.split_once('x')?;
        let (center_x, center_y) = center.split_once(',')?;
        Some(WorkloadSpec::GridBowl {
            width: width.parse().ok()?,
            height: height.parse().ok()?,
            center_x: center_x.parse().ok()?,
            center_y: center_y.parse().ok()?,
        })
    }
}

impl Objective<(u32, u32)> for WorkloadSpec {
    fn evaluate(&self, config: &(u32, u32)) -> f64 {
        match *self {
            WorkloadSpec::GridBowl {
                center_x, center_y, ..
            } => {
                let dx = f64::from(config.0) - f64::from(center_x);
                let dy = f64::from(config.1) - f64::from(center_y);
                dx * dx + dy * dy
            }
        }
    }
}

/// The campaign manifest: what the fleet is scanning and how it is carved up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcManifest {
    /// The workload every worker reconstructs.
    pub workload: WorkloadSpec,
    /// Worker slot count; the coordinator re-reads this every poll, so
    /// rewriting it mid-campaign resizes the fleet.
    pub slots: usize,
    /// Scan batch size (also the fence-check cadence).
    pub batch: usize,
    /// Total number of configurations (`space_len` of the workload's space).
    pub total: usize,
}

impl ProcManifest {
    /// Serialize and atomically replace the manifest at `path`.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let text = format!(
            "{PROC_MANIFEST_VERSION}\nworkload {}\nslots {}\nbatch {}\ntotal {}\n",
            self.workload.encode(),
            self.slots,
            self.batch,
            self.total
        );
        write_atomic(path, &text)
    }

    /// Read and parse the manifest at `path`.
    pub fn read(path: &Path) -> io::Result<ProcManifest> {
        let text = std::fs::read_to_string(path)?;
        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if header != PROC_MANIFEST_VERSION {
            return Err(invalid(&format!(
                "manifest header `{header}` is not `{PROC_MANIFEST_VERSION}`"
            )));
        }
        let mut workload = None;
        let mut slots = None;
        let mut batch = None;
        let mut total = None;
        for line in lines {
            match line.split_once(' ') {
                Some(("workload", value)) => workload = WorkloadSpec::decode(value),
                Some(("slots", value)) => slots = value.parse().ok(),
                Some(("batch", value)) => batch = value.parse().ok(),
                Some(("total", value)) => total = value.parse().ok(),
                _ => {}
            }
        }
        Ok(ProcManifest {
            workload: workload.ok_or_else(|| invalid("manifest is missing a usable workload"))?,
            slots: slots.ok_or_else(|| invalid("manifest is missing slots"))?,
            batch: batch.ok_or_else(|| invalid("manifest is missing batch"))?,
            total: total.ok_or_else(|| invalid("manifest is missing total"))?,
        })
    }

    /// Rewrite only the slot count — the elasticity knob a controller (or a
    /// test) turns while the campaign is running.
    pub fn rewrite_slots(path: &Path, slots: usize) -> io::Result<()> {
        let mut manifest = ProcManifest::read(path)?;
        manifest.slots = slots.max(1);
        manifest.write(path)
    }
}

/// Path layout of one campaign's work directory.
#[derive(Debug, Clone)]
pub struct WorkDir {
    root: PathBuf,
}

impl WorkDir {
    /// A layout rooted at `root` (nothing is created until
    /// [`WorkDir::create`]).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        WorkDir { root: root.into() }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The campaign manifest file.
    pub fn manifest(&self) -> PathBuf {
        self.root.join("manifest")
    }

    /// The coordinator-owned merged result store.
    pub fn merged(&self) -> PathBuf {
        self.root.join("merged.jsonl")
    }

    /// The grant (lease + fencing token) for `slot`.
    pub fn grant(&self, slot: usize) -> PathBuf {
        self.root.join(format!("leases/slot-{slot}.lease"))
    }

    /// The heartbeat file for `slot` at `generation`.
    pub fn beat(&self, slot: usize, generation: u64) -> PathBuf {
        self.root
            .join(format!("leases/slot-{slot}-g{generation}.beat"))
    }

    /// The private segment log for `slot` at `generation`.
    pub fn segment(&self, slot: usize, generation: u64) -> PathBuf {
        self.root
            .join(format!("segments/seg-{slot}-g{generation}.jsonl"))
    }

    /// The commit marker for `slot` at `generation`.
    pub fn done(&self, slot: usize, generation: u64) -> PathBuf {
        self.root
            .join(format!("segments/slot-{slot}-g{generation}.done"))
    }

    /// The captured stdout/stderr log for `slot` at `generation`.
    pub fn log(&self, slot: usize, generation: u64) -> PathBuf {
        self.root
            .join(format!("logs/slot-{slot}-g{generation}.log"))
    }

    /// The spawn ledger: one `slot generation pid` line per spawned worker.
    pub fn pids(&self) -> PathBuf {
        self.root.join("logs/pids")
    }

    fn create(&self) -> io::Result<()> {
        for sub in ["leases", "segments", "logs"] {
            std::fs::create_dir_all(self.root.join(sub))?;
        }
        Ok(())
    }
}

/// Replace `path` atomically (write a unique temp file, then rename).
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = PathBuf::from(format!("{}.tmp{}", path.display(), std::process::id()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Parse a `key value` lines file into a map (first token → rest of line).
fn read_kv(path: &Path) -> io::Result<HashMap<String, String>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .filter_map(|line| {
            let (key, value) = line.split_once(' ')?;
            Some((key.to_string(), value.to_string()))
        })
        .collect())
}

fn kv_number<T: std::str::FromStr>(kv: &HashMap<String, String>, key: &str) -> Option<T> {
    kv.get(key).and_then(|value| value.parse().ok())
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

struct WorkerArgs {
    work_dir: PathBuf,
    slot: usize,
    generation: u64,
    range: Range<usize>,
}

fn parse_worker_args(args: &[String]) -> Option<WorkerArgs> {
    let mut work_dir = None;
    let mut slot = None;
    let mut generation = None;
    let mut start = None;
    let mut end = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let value = iter.next()?;
        match flag.as_str() {
            "--work-dir" => work_dir = Some(PathBuf::from(value)),
            "--slot" => slot = value.parse().ok(),
            "--generation" => generation = value.parse().ok(),
            "--start" => start = value.parse().ok(),
            "--end" => end = value.parse().ok(),
            _ => return None,
        }
    }
    Some(WorkerArgs {
        work_dir: work_dir?,
        slot: slot?,
        generation: generation?,
        range: start?..end?,
    })
}

struct WorkerFault {
    kind: FaultKind,
    after_batches: usize,
    stall_ms: u64,
}

impl WorkerFault {
    fn parse(raw: &str) -> Option<WorkerFault> {
        let mut parts = raw.split(':');
        let kind = FaultKind::from_code(parts.next()?)?;
        let after_batches = parts.next()?.parse().ok()?;
        let stall_ms = match parts.next() {
            Some(ms) => ms.parse().ok()?,
            None => 2_000,
        };
        Some(WorkerFault {
            kind,
            after_batches,
            stall_ms,
        })
    }
}

/// Entry point of the `wd-worker` binary: scan the assigned index range,
/// append results to a private generation-scoped segment, and honour the
/// grant's fencing token before every batch.
///
/// Returns the process exit code ([`EXIT_OK`], [`EXIT_USAGE`],
/// [`EXIT_FENCED`], [`EXIT_EVAL_ERROR`]); injected faults
/// ([`WORKER_FAULT_ENV`]) may instead abort the process outright.
pub fn worker_main(args: &[String]) -> i32 {
    match run_worker(args) {
        Ok(code) => code,
        Err(error) => {
            eprintln!("wd-worker: {error}");
            EXIT_USAGE
        }
    }
}

fn run_worker(args: &[String]) -> io::Result<i32> {
    let Some(args) = parse_worker_args(args) else {
        eprintln!("usage: wd-worker --work-dir DIR --slot N --generation G --start A --end B");
        return Ok(EXIT_USAGE);
    };
    let work = WorkDir::new(&args.work_dir);
    let manifest = ProcManifest::read(&work.manifest())?;
    let space = manifest.workload.space();
    // Lock-free snapshot of what is already durable: these keys are never
    // re-evaluated, which is what bounds recovery work to interrupted batches.
    let (warm, _) = read_result_records(&work.merged())?;
    let segment: JsonlStore<(u32, u32)> =
        JsonlStore::open(work.segment(args.slot, args.generation))?;
    let mut fault = std::env::var(WORKER_FAULT_ENV)
        .ok()
        .and_then(|raw| WorkerFault::parse(&raw));

    let batch = manifest.batch.max(1);
    let mut evaluations = 0usize;
    let mut records = 0usize;
    let mut batch_index = 0usize;
    let mut index = args.range.start;
    while index < args.range.end {
        // Fencing check first: the grant's generation is the token.  Any
        // mismatch (or an unreadable grant) means the coordinator moved on —
        // abandon without one more write.
        let token: Option<u64> = read_kv(&work.grant(args.slot))
            .ok()
            .and_then(|kv| kv_number(&kv, "gen"));
        if token != Some(args.generation) {
            return Ok(EXIT_FENCED);
        }
        write_atomic(
            &work.beat(args.slot, args.generation),
            &format!("batches {batch_index}\n"),
        )?;

        if fault
            .as_ref()
            .is_some_and(|f| f.after_batches == batch_index)
        {
            // Take the fault so a stall that resumes does not re-trigger.
            if let Some(fault) = fault.take() {
                match fault.kind {
                    FaultKind::ShardDeath => std::process::abort(),
                    FaultKind::EvalError => return Ok(EXIT_EVAL_ERROR),
                    FaultKind::Stall => {
                        // Sleep past the coordinator's staleness horizon, then
                        // loop back to the fence check: the woken zombie must
                        // observe the bumped generation and abandon.
                        std::thread::sleep(Duration::from_millis(fault.stall_ms));
                        continue;
                    }
                    FaultKind::TornWrite => {
                        // A crash mid-`write(2)`: the batch prefix lands, the
                        // last record becomes a truncated line, the process dies.
                        let batch_end = (index + batch).min(args.range.end);
                        let mut configs = Vec::new();
                        for i in index..batch_end {
                            if let Some(config) = space.config_at(i) {
                                if !warm.contains_key(&config.encode_key()) {
                                    configs.push(config);
                                }
                            }
                        }
                        if let Some((last, prefix)) = configs.split_last() {
                            let energies: Vec<f64> = prefix
                                .iter()
                                .map(|config| manifest.workload.evaluate(config))
                                .collect();
                            segment.record_batch(prefix, &energies);
                            segment.inject_torn_write(&last.encode_key());
                        }
                        let _ = segment.flush();
                        std::process::abort();
                    }
                }
            }
        }

        let batch_end = (index + batch).min(args.range.end);
        let mut configs = Vec::new();
        let mut energies = Vec::new();
        for i in index..batch_end {
            let Some(config) = space.config_at(i) else {
                return Ok(EXIT_USAGE);
            };
            if warm.contains_key(&config.encode_key()) {
                continue;
            }
            energies.push(manifest.workload.evaluate(&config));
            evaluations += 1;
            configs.push(config);
        }
        if !configs.is_empty() {
            segment.record_batch(&configs, &energies);
            records += configs.len();
            // Flush per batch so a `kill -9` loses at most the in-flight
            // batch — that is what bounds re-evaluation after a crash.
            segment.flush()?;
        }
        index = batch_end;
        batch_index += 1;
    }

    segment.flush()?;
    write_atomic(
        &work.done(args.slot, args.generation),
        &format!("evaluations {evaluations}\nrecords {records}\n"),
    )?;
    Ok(EXIT_OK)
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// Counters of one multi-process campaign run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcReport {
    /// Worker processes spawned, including respawns.
    pub spawned: usize,
    /// Spawns that were retries or steals (attempt > 0 or a stolen range).
    pub respawned: usize,
    /// Attempts that finished their range and committed a done marker.
    pub completed: usize,
    /// Attempts that failed (crash, kill, injected error, or a fenced stall).
    pub failed_attempts: usize,
    /// Leases the coordinator fenced after heartbeat staleness.
    pub fenced: usize,
    /// Zombies that observed their fence and abandoned on their own
    /// ([`EXIT_FENCED`]).
    pub fenced_exits: usize,
    /// Ranges handed to the steal queue after exhausting per-range retries.
    pub steals: usize,
    /// Slots whose range had to be stolen.
    pub dead_slots: Vec<usize>,
    /// Records copied from worker segments into the merged store.
    pub salvaged_records: usize,
    /// Evaluations workers reported in their done markers.
    pub worker_evaluations: usize,
    /// Evaluations the final verification pass had to perform — `0` proves
    /// every persisted key was honoured and nothing was re-evaluated.
    pub verification_evaluations: usize,
    /// Pending ranges split in half to feed slots added mid-campaign.
    pub elastic_splits: usize,
}

/// What a multi-process campaign returns: the merged outcome (bit-identical to
/// a fault-free single-process run) plus the transport's bookkeeping.
#[derive(Debug, Clone)]
pub struct ProcOutcome {
    /// The merged campaign outcome.
    pub outcome: CampaignOutcome<(u32, u32)>,
    /// Transport counters (spawns, fences, steals, salvage, verification).
    pub report: ProcReport,
}

struct PendingRange {
    range: Range<usize>,
    attempt: usize,
    stolen: bool,
    ready_at: Instant,
}

struct LiveWorker {
    slot: usize,
    generation: u64,
    range: Range<usize>,
    attempt: usize,
    stolen: bool,
    fenced: bool,
    child: Child,
    beat_value: Option<u64>,
    beat_changed: Instant,
}

fn shutdown_workers(live: &mut Vec<LiveWorker>) {
    while let Some(mut worker) = live.pop() {
        let _ = worker.child.kill();
        let _ = worker.child.wait();
    }
}

/// Copy every record of `segment` whose key is absent from `store` (the
/// order-independent merge: duplicates are identical by determinism, so
/// first-writer-wins is safe), in sorted-key order for reproducible logs.
fn salvage_segment(store: &JsonlStore<(u32, u32)>, segment: &Path) -> Result<usize, CampaignError> {
    let (records, _torn) = read_result_records(segment).map_err(CampaignError::Transport)?;
    let mut entries: Vec<(String, f64)> = records.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut salvaged = 0;
    for (key, energy) in entries {
        let Some(config) = <(u32, u32)>::decode_key(&key) else {
            continue;
        };
        if store.lookup(&config).is_none() {
            store.record(&config, energy);
            salvaged += 1;
        }
    }
    if salvaged > 0 {
        // Respawned workers read the merged log lock-free at startup; flush so
        // the salvage is visible to them.
        store.flush()?;
    }
    Ok(salvaged)
}

/// A campaign run across real worker processes (see the module docs for the
/// protocol).  The coordinator spawns `wd-worker` children, watches exit
/// statuses and heartbeats, fences stalled leases, salvages every segment, and
/// retries or steals ranges with the shared [`RetryPolicy`].
#[derive(Debug, Clone)]
pub struct ProcCampaign {
    shard_count: usize,
    batch_size: usize,
    policy: RetryPolicy,
    faults: FaultPlan,
    worker_bin: Option<PathBuf>,
    tick: Duration,
    stale_after: Duration,
    poll_interval: Duration,
    stall_ms: u64,
    max_duration: Duration,
}

impl ProcCampaign {
    /// A campaign over `shard_count` worker slots with defaults tuned for the
    /// test-scale workloads: 64-config batches, 25 ms backoff tick, 400 ms
    /// heartbeat staleness, 2 s injected stalls, 120 s wall-clock budget.
    pub fn new(shard_count: usize) -> Self {
        ProcCampaign {
            shard_count: shard_count.max(1),
            batch_size: 64,
            policy: RetryPolicy::default(),
            faults: FaultPlan::none(),
            worker_bin: None,
            tick: Duration::from_millis(25),
            stale_after: Duration::from_millis(400),
            poll_interval: Duration::from_millis(10),
            stall_ms: 2_000,
            max_duration: Duration::from_secs(120),
        }
    }

    /// Override the scan batch size (also the fence-check cadence; clamped to
    /// at least 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Override the retry/backoff policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Inject a deterministic fault schedule (delivered to workers through
    /// [`WORKER_FAULT_ENV`], keyed by slot and the slot's cumulative attempt
    /// counter, exactly like the in-process supervisor).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Pin the worker binary path (tests pass `env!("CARGO_BIN_EXE_wd-worker")`).
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(bin.into());
        self
    }

    /// Override the transport timing: backoff tick, heartbeat staleness
    /// horizon, and coordinator poll interval.
    pub fn with_timing(
        mut self,
        tick: Duration,
        stale_after: Duration,
        poll_interval: Duration,
    ) -> Self {
        self.tick = tick;
        self.stale_after = stale_after;
        self.poll_interval = poll_interval;
        self
    }

    /// Override how long an injected stall sleeps (must exceed the staleness
    /// horizon for the zombie-fencing path to fire).
    pub fn with_stall_ms(mut self, stall_ms: u64) -> Self {
        self.stall_ms = stall_ms;
        self
    }

    /// Override the campaign's wall-clock budget.
    pub fn with_max_duration(mut self, max_duration: Duration) -> Self {
        self.max_duration = max_duration;
        self
    }

    fn resolve_worker_bin(&self) -> io::Result<PathBuf> {
        if let Some(bin) = &self.worker_bin {
            return Ok(bin.clone());
        }
        if let Ok(bin) = std::env::var(WORKER_BIN_ENV) {
            return Ok(PathBuf::from(bin));
        }
        let mut dir = std::env::current_exe()?;
        dir.pop();
        // Examples and test binaries live one level below the profile dir.
        if dir
            .file_name()
            .is_some_and(|name| name == "examples" || name == "deps")
        {
            dir.pop();
        }
        let candidate = dir.join("wd-worker");
        if candidate.exists() {
            return Ok(candidate);
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "wd-worker binary not found at {}; build it with \
                 `cargo build -p wd_dist --bin wd-worker` or set {WORKER_BIN_ENV}",
                candidate.display()
            ),
        ))
    }

    fn grace(&self) -> Duration {
        Duration::from_millis(self.stall_ms) + self.stale_after + Duration::from_millis(500)
    }

    /// Run the campaign in `work_dir` (created if needed), spawning real
    /// worker processes over `spec`'s space.
    ///
    /// # Errors
    ///
    /// [`CampaignError::EmptySpace`] for an empty workload,
    /// [`CampaignError::Transport`] for spawn/lease/manifest I/O failures or a
    /// blown wall-clock budget, [`CampaignError::Store`] for merged-store
    /// failures, and [`CampaignError::RangeAbandoned`] when a range exhausts
    /// every retry and steal.
    pub fn run(
        &self,
        spec: &WorkloadSpec,
        work_dir: impl AsRef<Path>,
    ) -> Result<ProcOutcome, CampaignError> {
        self.run_observed(spec, work_dir, &NoopRecorder, "proc")
    }

    /// [`ProcCampaign::run`] with the transport lifecycle published to
    /// `recorder` under `scope`: `worker.spawned` / `worker.exited` per
    /// process, `worker.fenced` per staleness fence, `worker.respawned` per
    /// retry or steal, plus the underlying campaign's own events from the
    /// final verification pass.
    pub fn run_observed(
        &self,
        spec: &WorkloadSpec,
        work_dir: impl AsRef<Path>,
        recorder: &dyn Recorder,
        scope: &str,
    ) -> Result<ProcOutcome, CampaignError> {
        let work = WorkDir::new(work_dir.as_ref());
        work.create().map_err(CampaignError::Transport)?;
        let space = spec.space();
        let total = space.space_len().ok_or(CampaignError::NotEnumerable)?;
        if total == 0 {
            return Err(CampaignError::EmptySpace);
        }
        let manifest = ProcManifest {
            workload: spec.clone(),
            slots: self.shard_count,
            batch: self.batch_size,
            total,
        };
        manifest
            .write(&work.manifest())
            .map_err(CampaignError::Transport)?;
        let store: JsonlStore<(u32, u32)> =
            JsonlStore::open_with_context(work.merged(), &spec.encode())?;
        let worker_bin = self
            .resolve_worker_bin()
            .map_err(CampaignError::Transport)?;

        let plan = ShardPlan::new(total, self.shard_count.saturating_mul(RANGES_PER_SLOT));
        let started = Instant::now();
        let mut pending: Vec<PendingRange> = plan
            .ranges()
            .into_iter()
            .filter(|range| !range.is_empty())
            .map(|range| PendingRange {
                range,
                attempt: 0,
                stolen: false,
                ready_at: started,
            })
            .collect();
        let mut slot_gens: Vec<u64> = vec![0; self.shard_count];
        // Cumulative per-slot attempt counters, the key space of
        // [`FaultPlan::fate`] (matching the in-process supervisor's semantics).
        let mut slot_attempts: Vec<usize> = vec![0; self.shard_count];
        let mut live: Vec<LiveWorker> = Vec::new();
        let mut report = ProcReport::default();
        let mut zombie_grace_since: Option<Instant> = None;

        loop {
            if started.elapsed() > self.max_duration {
                shutdown_workers(&mut live);
                return Err(CampaignError::Transport(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "campaign did not settle within {:?}: {} range(s) still pending",
                        self.max_duration,
                        pending.len()
                    ),
                )));
            }

            // Elasticity: the manifest's slot count is re-read every poll.
            let slots = ProcManifest::read(&work.manifest())
                .map(|m| m.slots.max(1))
                .unwrap_or(self.shard_count);
            if slot_gens.len() < slots {
                slot_gens.resize(slots, 0);
                slot_attempts.resize(slots, 0);
            }
            // More free capacity than queued work → split the largest queued
            // range so new slots have something to pull.
            let active = live.iter().filter(|w| !w.fenced).count();
            while slots.saturating_sub(active) > pending.len() {
                let splittable = pending
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.range.len() >= 2 * self.batch_size)
                    .max_by_key(|(_, p)| p.range.len())
                    .map(|(pos, _)| pos);
                let Some(pos) = splittable else { break };
                let mid = pending[pos].range.start + pending[pos].range.len() / 2;
                let tail = mid..pending[pos].range.end;
                pending[pos].range = pending[pos].range.start..mid;
                pending.push(PendingRange {
                    range: tail,
                    attempt: 0,
                    stolen: pending[pos].stolen,
                    ready_at: pending[pos].ready_at,
                });
                report.elastic_splits += 1;
            }

            // Spawn ready ranges onto free slots.
            let now = Instant::now();
            for slot in 0..slots {
                if live.iter().any(|w| w.slot == slot && !w.fenced) {
                    continue;
                }
                let Some(pos) = pending.iter().position(|p| p.ready_at <= now) else {
                    break;
                };
                let item = pending.remove(pos);
                slot_gens[slot] += 1;
                let generation = slot_gens[slot];
                write_atomic(
                    &work.grant(slot),
                    &format!(
                        "gen {generation}\nstart {}\nend {}\n",
                        item.range.start, item.range.end
                    ),
                )
                .map_err(CampaignError::Transport)?;
                let log =
                    File::create(work.log(slot, generation)).map_err(CampaignError::Transport)?;
                let err_log = log.try_clone().map_err(CampaignError::Transport)?;
                let mut command = Command::new(&worker_bin);
                command
                    .arg("--work-dir")
                    .arg(work.root())
                    .arg("--slot")
                    .arg(slot.to_string())
                    .arg("--generation")
                    .arg(generation.to_string())
                    .arg("--start")
                    .arg(item.range.start.to_string())
                    .arg("--end")
                    .arg(item.range.end.to_string())
                    .stdin(Stdio::null())
                    .stdout(Stdio::from(log))
                    .stderr(Stdio::from(err_log));
                let slot_attempt = slot_attempts[slot];
                slot_attempts[slot] += 1;
                if let Some(event) = self.faults.fate(slot, slot_attempt) {
                    command.env(
                        WORKER_FAULT_ENV,
                        format!(
                            "{}:{}:{}",
                            event.kind.code(),
                            event.after_batches,
                            self.stall_ms
                        ),
                    );
                }
                let child = command.spawn().map_err(CampaignError::Transport)?;
                if let Ok(mut pids) = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(work.pids())
                {
                    let _ = writeln!(pids, "{slot} {generation} {}", child.id());
                }
                report.spawned += 1;
                recorder.event(
                    scope,
                    "worker.spawned",
                    &[
                        ("slot", FieldValue::U64(slot as u64)),
                        ("generation", FieldValue::U64(generation)),
                        ("start", FieldValue::U64(item.range.start as u64)),
                        ("len", FieldValue::U64(item.range.len() as u64)),
                        ("attempt", FieldValue::U64(item.attempt as u64)),
                    ],
                );
                if item.attempt > 0 || item.stolen {
                    report.respawned += 1;
                    recorder.event(
                        scope,
                        "worker.respawned",
                        &[
                            ("slot", FieldValue::U64(slot as u64)),
                            ("generation", FieldValue::U64(generation)),
                            ("attempt", FieldValue::U64(item.attempt as u64)),
                            ("stolen", FieldValue::Bool(item.stolen)),
                        ],
                    );
                }
                live.push(LiveWorker {
                    slot,
                    generation,
                    range: item.range,
                    attempt: item.attempt,
                    stolen: item.stolen,
                    fenced: false,
                    child,
                    beat_value: None,
                    beat_changed: now,
                });
            }

            // Reap exits and watch heartbeats.
            let mut index = 0;
            while index < live.len() {
                let status = live[index]
                    .child
                    .try_wait()
                    .map_err(CampaignError::Transport)?;
                if let Some(status) = status {
                    let worker = live.remove(index);
                    // Salvage whatever the attempt persisted, clean exit or not;
                    // the merge only fills keys the merged log does not hold.
                    report.salvaged_records +=
                        salvage_segment(&store, &work.segment(worker.slot, worker.generation))?;
                    let code = status.code();
                    let done = read_kv(&work.done(worker.slot, worker.generation)).ok();
                    let completed = code == Some(EXIT_OK) && done.is_some();
                    recorder.event(
                        scope,
                        "worker.exited",
                        &[
                            ("slot", FieldValue::U64(worker.slot as u64)),
                            ("generation", FieldValue::U64(worker.generation)),
                            // `u64::MAX` encodes "no exit code" (killed by signal).
                            (
                                "code",
                                FieldValue::U64(code.map(|c| c as i64 as u64).unwrap_or(u64::MAX)),
                            ),
                            ("completed", FieldValue::Bool(completed)),
                            ("fenced", FieldValue::Bool(worker.fenced)),
                        ],
                    );
                    if worker.fenced {
                        // Its range was requeued when the lease was fenced.
                        if code == Some(EXIT_FENCED) {
                            report.fenced_exits += 1;
                        }
                    } else if completed {
                        report.completed += 1;
                        report.worker_evaluations += done
                            .as_ref()
                            .and_then(|kv| kv_number::<usize>(kv, "evaluations"))
                            .unwrap_or(0);
                    } else {
                        report.failed_attempts += 1;
                        let next_attempt = worker.attempt + 1;
                        if next_attempt >= self.policy.max_attempts.max(1) {
                            if worker.stolen {
                                shutdown_workers(&mut live);
                                return Err(CampaignError::RangeAbandoned {
                                    range: worker.range,
                                });
                            }
                            report.steals += 1;
                            if !report.dead_slots.contains(&worker.slot) {
                                report.dead_slots.push(worker.slot);
                            }
                            pending.push(PendingRange {
                                range: worker.range,
                                attempt: 0,
                                stolen: true,
                                ready_at: Instant::now(),
                            });
                        } else {
                            let ticks = u32::try_from(self.policy.backoff_ticks(worker.attempt))
                                .unwrap_or(u32::MAX);
                            pending.push(PendingRange {
                                range: worker.range,
                                attempt: next_attempt,
                                stolen: worker.stolen,
                                ready_at: Instant::now() + self.tick * ticks,
                            });
                        }
                    }
                    continue;
                }
                if live[index].fenced {
                    index += 1;
                    continue;
                }
                let beat_path = work.beat(live[index].slot, live[index].generation);
                let beat: Option<u64> = read_kv(&beat_path)
                    .ok()
                    .and_then(|kv| kv_number(&kv, "batches"));
                if beat != live[index].beat_value {
                    live[index].beat_value = beat;
                    live[index].beat_changed = Instant::now();
                    index += 1;
                    continue;
                }
                if live[index].beat_changed.elapsed() < self.stale_after {
                    index += 1;
                    continue;
                }
                // The heartbeat went stale: fence the lease.  Bumping the
                // grant's generation is the token rotation — the zombie's next
                // fence check fails and it abandons; meanwhile its range goes
                // back to the queue and its partial segment is salvaged now.
                let slot = live[index].slot;
                let generation = live[index].generation;
                let attempt = live[index].attempt;
                let stolen = live[index].stolen;
                let range = live[index].range.clone();
                live[index].fenced = true;
                slot_gens[slot] += 1;
                write_atomic(
                    &work.grant(slot),
                    &format!(
                        "gen {}\nstart {}\nend {}\n",
                        slot_gens[slot], range.start, range.end
                    ),
                )
                .map_err(CampaignError::Transport)?;
                report.fenced += 1;
                report.failed_attempts += 1;
                recorder.event(
                    scope,
                    "worker.fenced",
                    &[
                        ("slot", FieldValue::U64(slot as u64)),
                        ("generation", FieldValue::U64(generation)),
                        ("new_generation", FieldValue::U64(slot_gens[slot])),
                    ],
                );
                report.salvaged_records +=
                    salvage_segment(&store, &work.segment(slot, generation))?;
                let next_attempt = attempt + 1;
                if next_attempt >= self.policy.max_attempts.max(1) {
                    if stolen {
                        shutdown_workers(&mut live);
                        return Err(CampaignError::RangeAbandoned { range });
                    }
                    report.steals += 1;
                    if !report.dead_slots.contains(&slot) {
                        report.dead_slots.push(slot);
                    }
                    pending.push(PendingRange {
                        range,
                        attempt: 0,
                        stolen: true,
                        ready_at: Instant::now(),
                    });
                } else {
                    let ticks =
                        u32::try_from(self.policy.backoff_ticks(attempt)).unwrap_or(u32::MAX);
                    pending.push(PendingRange {
                        range,
                        attempt: next_attempt,
                        stolen,
                        ready_at: Instant::now() + self.tick * ticks,
                    });
                }
                index += 1;
            }

            if pending.is_empty() && live.iter().all(|w| w.fenced) {
                if live.is_empty() {
                    break;
                }
                // Only fenced zombies remain.  Give each a grace window to
                // observe the rotated token and abandon on its own (that path
                // is the fencing proof); reap forcibly after that.
                let since = *zombie_grace_since.get_or_insert(Instant::now());
                if since.elapsed() > self.grace() {
                    shutdown_workers(&mut live);
                    break;
                }
            } else {
                zombie_grace_since = None;
            }
            std::thread::sleep(self.poll_interval);
        }

        store.flush()?;
        // The verification pass doubles as the merge proof: re-running the
        // in-process campaign over the merged store yields the canonical
        // outcome (bit-identical to a fault-free run by construction), and the
        // counter shows how many keys the fleet failed to persist.
        let counting = CountingObjective::new(spec);
        let outcome = ShardedCampaign::new(self.shard_count)
            .with_batch_size(self.batch_size)
            .run_observed(&space, &counting, &store, recorder, scope)?;
        report.verification_evaluations = counting.evaluations();
        Ok(ProcOutcome { outcome, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_spec_round_trips_and_scores_the_bowl() {
        let spec = WorkloadSpec::GridBowl {
            width: 12,
            height: 9,
            center_x: 4,
            center_y: 6,
        };
        let encoded = spec.encode();
        assert_eq!(encoded, "grid-bowl/12x9/4,6");
        assert_eq!(WorkloadSpec::decode(&encoded), Some(spec.clone()));
        assert_eq!(WorkloadSpec::decode("grid-bowl/12x9"), None);
        assert_eq!(WorkloadSpec::decode("mystery/1"), None);
        assert_eq!(
            spec.space(),
            GridSpace {
                width: 12,
                height: 9
            }
        );
        assert_eq!(spec.evaluate(&(4, 6)), 0.0);
        assert_eq!(spec.evaluate(&(0, 0)), 52.0);
    }

    #[test]
    fn manifest_round_trips_and_rewrites_slots() {
        let dir = std::env::temp_dir().join(format!("wd-proc-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest");
        let manifest = ProcManifest {
            workload: WorkloadSpec::GridBowl {
                width: 8,
                height: 8,
                center_x: 1,
                center_y: 2,
            },
            slots: 3,
            batch: 16,
            total: 64,
        };
        manifest.write(&path).unwrap();
        assert_eq!(ProcManifest::read(&path).unwrap(), manifest);
        ProcManifest::rewrite_slots(&path, 5).unwrap();
        assert_eq!(ProcManifest::read(&path).unwrap().slots, 5);

        std::fs::write(&path, "not-a-manifest/v9\n").unwrap();
        let err = ProcManifest::read(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_fault_parses_codes_and_defaults_stall() {
        let fault = WorkerFault::parse("death:2").unwrap();
        assert_eq!(fault.kind, FaultKind::ShardDeath);
        assert_eq!(fault.after_batches, 2);
        assert_eq!(fault.stall_ms, 2_000);
        let fault = WorkerFault::parse("stall:0:50").unwrap();
        assert_eq!(fault.kind, FaultKind::Stall);
        assert_eq!(fault.stall_ms, 50);
        assert!(WorkerFault::parse("gremlins:1").is_none());
        assert!(WorkerFault::parse("death").is_none());
    }

    #[test]
    fn worker_args_require_every_flag() {
        let good: Vec<String> = [
            "--work-dir",
            "/tmp/x",
            "--slot",
            "1",
            "--generation",
            "3",
            "--start",
            "0",
            "--end",
            "10",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let parsed = parse_worker_args(&good).unwrap();
        assert_eq!(parsed.slot, 1);
        assert_eq!(parsed.generation, 3);
        assert_eq!(parsed.range, 0..10);
        assert!(parse_worker_args(&good[..4]).is_none());
        let odd = vec!["--slot".to_string()];
        assert!(parse_worker_args(&odd).is_none());
    }

    #[test]
    fn work_dir_layout_is_generation_scoped() {
        let work = WorkDir::new("/w");
        assert_eq!(work.grant(2), Path::new("/w/leases/slot-2.lease"));
        assert_eq!(work.beat(2, 7), Path::new("/w/leases/slot-2-g7.beat"));
        assert_eq!(work.segment(0, 1), Path::new("/w/segments/seg-0-g1.jsonl"));
        assert_eq!(work.done(0, 1), Path::new("/w/segments/slot-0-g1.done"));
        assert_eq!(work.log(3, 2), Path::new("/w/logs/slot-3-g2.log"));
        assert_eq!(work.pids(), Path::new("/w/logs/pids"));
    }
}
