//! Property-based tests for the campaign coordinator: for random grids, shard counts
//! and batch sizes, the shard-merged outcome equals the single-node
//! `ParallelEnumeration` outcome bit-for-bit — for any shard completion order — and a
//! warm store answers a repeated campaign without a single new evaluation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use wd_dist::{
    merge_shard_bests, JsonlStore, MemoryStore, ResultStore, ShardReport, ShardedCampaign,
    STORE_SCHEMA_VERSION,
};
use wd_opt::space::GridSpace;
use wd_opt::{CacheStats, CountingObjective, ParallelEnumeration};

/// A deterministic objective with deliberately many exact ties (energies are small
/// integers), so the lowest-energy/earliest-global-index merge rule is exercised on
/// almost every case.
fn quantized(salt: u64) -> impl Fn(&(u32, u32)) -> f64 + Sync {
    move |config: &(u32, u32)| {
        let mixed = (u64::from(config.0) << 32 | u64::from(config.1))
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ salt;
        (mixed % 5) as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: sharding is invisible in the result.
    #[test]
    fn sharded_campaign_is_bit_identical_to_single_node(
        width in 1u32..28,
        height in 1u32..20,
        shards in 1usize..12,
        batch in 1usize..70,
        salt in 0u64..1_000_000,
    ) {
        let space = GridSpace { width, height };
        let objective = quantized(salt);
        let reference = ParallelEnumeration::new().run_indexed(&space, &objective);

        let store = MemoryStore::new();
        let campaign = ShardedCampaign::new(shards).with_batch_size(batch);
        let outcome = campaign.run(&space, &objective, &store).unwrap();

        prop_assert_eq!(&outcome.best_config, &reference.outcome.best_config);
        prop_assert_eq!(
            outcome.best_energy.to_bits(),
            reference.outcome.best_energy.to_bits()
        );
        prop_assert_eq!(outcome.best_index, reference.best_index);
        prop_assert_eq!(outcome.evaluations, (width * height) as usize);
    }

    /// Shard results may arrive in any order: every permutation of the per-shard
    /// bests merges to the same winner.
    #[test]
    fn merge_is_independent_of_shard_completion_order(
        width in 1u32..24,
        height in 1u32..18,
        shards in 2usize..10,
        salt in 0u64..1_000_000,
        shuffle_seed in 0u64..10_000,
    ) {
        let space = GridSpace { width, height };
        let objective = quantized(salt);
        let store = MemoryStore::new();
        let outcome = ShardedCampaign::new(shards).run(&space, &objective, &store).unwrap();

        let mut bests: Vec<(usize, f64)> =
            outcome.shards.iter().map(ShardReport::best).collect();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        for _ in 0..4 {
            bests.shuffle(&mut rng);
            let (index, energy) = merge_shard_bests(bests.iter().copied()).unwrap();
            prop_assert_eq!(index, outcome.best_index);
            prop_assert_eq!(energy.to_bits(), outcome.best_energy.to_bits());
        }
    }

    /// Resume-for-free: a repeated campaign against the warm store performs zero new
    /// evaluations and reproduces the cold result exactly, even when the shard count
    /// changes between runs.
    #[test]
    fn warm_store_resumes_any_shard_count_with_zero_evaluations(
        width in 1u32..24,
        height in 1u32..18,
        cold_shards in 1usize..10,
        warm_shards in 1usize..10,
        salt in 0u64..1_000_000,
    ) {
        let space = GridSpace { width, height };
        let objective = quantized(salt);
        let store = MemoryStore::new();

        let cold = ShardedCampaign::new(cold_shards).run(&space, &objective, &store).unwrap();
        prop_assert_eq!(cold.stats.misses, (width * height) as usize);

        let counting = CountingObjective::new(&objective);
        let warm = ShardedCampaign::new(warm_shards).run(&space, &counting, &store).unwrap();
        prop_assert_eq!(counting.evaluations(), 0);
        prop_assert_eq!(&warm.best_config, &cold.best_config);
        prop_assert_eq!(warm.best_energy.to_bits(), cold.best_energy.to_bits());
        prop_assert_eq!(warm.best_index, cold.best_index);
        prop_assert_eq!(warm.stats.hits, (width * height) as usize);
    }

    /// Compaction preserves the per-key merged best (lowest energy, ties by the
    /// earliest record), round-trips the accumulated `CacheStats`, stamps the schema
    /// header, and the store keeps answering (and persisting) lookups afterwards.
    #[test]
    fn compaction_preserves_the_merged_best_and_roundtrips_stats(
        records in proptest::collection::vec((0u32..12, -4.0f64..4.0), 1..60),
        hits in 0usize..10_000,
        misses in 0usize..10_000,
        case in 0u64..u64::MAX,
    ) {
        let path = std::env::temp_dir().join(format!(
            "wd_dist-compaction-prop-{}-{case:x}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        // the merged best per key: first-lowest in record order
        let mut expected: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for &(key, energy) in &records {
            expected
                .entry(key)
                .and_modify(|best| {
                    if energy.total_cmp(best).is_lt() {
                        *best = energy;
                    }
                })
                .or_insert(energy);
        }
        let stats = CacheStats { hits, misses };

        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        for &(key, energy) in &records {
            store.record(&key, energy);
        }
        store.record_stats(stats);
        let report = store.compact().unwrap();
        prop_assert_eq!(report.records_before, records.len());
        prop_assert_eq!(report.records_after, expected.len());

        // the live store follows the merge rule, bit for bit
        prop_assert_eq!(store.len(), expected.len());
        for (&key, &energy) in &expected {
            prop_assert_eq!(store.lookup(&key).unwrap().to_bits(), energy.to_bits());
        }
        prop_assert_eq!(store.recorded_stats(), stats);

        // appends after compaction persist
        store.record(&99, 0.5);
        store.flush().unwrap();

        // release the single-writer lock, then a reopened store agrees exactly
        let snapshots: Vec<_> = store
            .retained_generations()
            .iter()
            .map(|&generation| store.generation_file(generation))
            .collect();
        drop(store);
        let reopened: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        prop_assert_eq!(reopened.schema_version(), Some(STORE_SCHEMA_VERSION));
        prop_assert_eq!(reopened.skipped_lines(), 0);
        prop_assert_eq!(reopened.len(), expected.len() + 1);
        for (&key, &energy) in &expected {
            prop_assert_eq!(reopened.lookup(&key).unwrap().to_bits(), energy.to_bits());
        }
        prop_assert_eq!(reopened.recorded_stats(), stats);
        prop_assert_eq!(reopened.lookup(&99), Some(0.5));
        drop(reopened);

        for snapshot in snapshots {
            let _ = std::fs::remove_file(snapshot);
        }
        std::fs::remove_file(&path).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `RetryPolicy::backoff_ticks` over the full `base`/`cap`/`retry_index`
    /// range: capped, monotone non-decreasing, exact doubling below the cap,
    /// and saturating (never panicking) for shift counts past 63.
    #[test]
    fn backoff_ticks_is_capped_monotone_and_saturating(
        base in 0u64..=u64::MAX,
        cap in 0u64..=u64::MAX,
        retry_index in 0usize..200,
    ) {
        let policy = wd_dist::RetryPolicy {
            max_attempts: 4,
            backoff_base: base,
            backoff_cap: cap,
            lease_ticks: 3,
        };
        let ticks = policy.backoff_ticks(retry_index);
        prop_assert!(ticks <= cap, "backoff {ticks} exceeds cap {cap}");
        prop_assert_eq!(policy.backoff_ticks(0), base.min(cap));
        if retry_index > 0 {
            let previous = policy.backoff_ticks(retry_index - 1);
            prop_assert!(previous <= ticks, "backoff shrank: {previous} -> {ticks}");
            // Below the cap nothing clamps or saturates, so the schedule is
            // exactly exponential.
            if ticks < cap {
                prop_assert_eq!(ticks, previous.saturating_mul(2));
            }
        }
        if base > 0 && retry_index >= 63 {
            // The shift would overflow; saturation must pin the result at the cap.
            prop_assert_eq!(ticks, cap);
        }
        if base == 0 {
            prop_assert_eq!(ticks, 0);
        }
    }
}
