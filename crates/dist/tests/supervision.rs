//! Acceptance tests for the fault-tolerance layer: under any deterministic
//! [`FaultPlan`], a supervised campaign converges to the **bit-identical** best
//! `(config, energy, index)` of the fault-free run, and keys persisted before a
//! fault are **never** re-evaluated — recovery only pays for what the fault lost.
//!
//! The chaos seed is taken from `WD_CHAOS_SEED` when set (the CI chaos job sweeps
//! several), so a failing schedule can be replayed exactly.

use std::collections::HashMap;
use std::sync::Mutex;

use proptest::prelude::*;

use wd_dist::{
    FaultEvent, FaultKind, FaultPlan, JsonlStore, MemoryStore, ResultStore, RetryPolicy,
    ShardedCampaign,
};
use wd_obs::Registry;
use wd_opt::space::GridSpace;
use wd_opt::{CountingObjective, Objective};

/// A deterministic objective with exact ties, so the earliest-index merge rule is
/// exercised under supervision too.
fn quantized(salt: u64) -> impl Fn(&(u32, u32)) -> f64 + Sync {
    move |config: &(u32, u32)| {
        let mixed = (u64::from(config.0) << 32 | u64::from(config.1))
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ salt;
        (mixed % 7) as f64
    }
}

/// Counts how often each configuration is evaluated, so re-evaluation of persisted
/// keys is detectable per key (not just in aggregate).
struct TrackingObjective<'a, F> {
    inner: &'a F,
    counts: Mutex<HashMap<(u32, u32), usize>>,
}

impl<'a, F> TrackingObjective<'a, F> {
    fn new(inner: &'a F) -> Self {
        TrackingObjective {
            inner,
            counts: Mutex::new(HashMap::new()),
        }
    }

    fn counts(&self) -> HashMap<(u32, u32), usize> {
        self.counts.lock().unwrap().clone()
    }
}

impl<F: Fn(&(u32, u32)) -> f64 + Sync> Objective<(u32, u32)> for TrackingObjective<'_, F> {
    fn evaluate(&self, config: &(u32, u32)) -> f64 {
        *self.counts.lock().unwrap().entry(*config).or_insert(0) += 1;
        (self.inner)(config)
    }
}

fn chaos_seed() -> u64 {
    std::env::var("WD_CHAOS_SEED")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The acceptance invariant: for random spaces, shard counts, batch sizes and
    /// fault plans, the supervised campaign converges to the bit-identical best of
    /// the fault-free run — and no configuration is evaluated more than once,
    /// except the (at most one per torn-write event) records a torn append lost
    /// before they reached the store.
    #[test]
    fn supervised_campaigns_converge_bit_identically_under_random_fault_plans(
        width in 1u32..22,
        height in 1u32..16,
        shards in 1usize..7,
        batch in 1usize..40,
        salt in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
    ) {
        let space = GridSpace { width, height };
        let objective = quantized(salt);
        let reference = ShardedCampaign::new(shards)
            .with_batch_size(batch)
            .run(&space, &objective, &MemoryStore::new())
            .unwrap();

        let faults = FaultPlan::random(plan_seed ^ chaos_seed(), shards, 2, 3);
        let tracking = TrackingObjective::new(&objective);
        let supervised = ShardedCampaign::new(shards)
            .with_batch_size(batch)
            .run_supervised(
                &space,
                &tracking,
                &MemoryStore::new(),
                &faults,
                &RetryPolicy::default(),
            )
            .unwrap();

        prop_assert_eq!(&supervised.outcome.best_config, &reference.best_config);
        prop_assert_eq!(
            supervised.outcome.best_energy.to_bits(),
            reference.best_energy.to_bits()
        );
        prop_assert_eq!(supervised.outcome.best_index, reference.best_index);
        prop_assert_eq!(supervised.outcome.evaluations, (width * height) as usize);

        // persisted keys resume from the store: a key is only ever re-evaluated if
        // a torn write dropped it before it was persisted, and each torn-write
        // event loses at most one record
        let torn_events = faults
            .events()
            .iter()
            .filter(|event| event.kind == FaultKind::TornWrite)
            .count();
        let counts = tracking.counts();
        let extra_evaluations: usize =
            counts.values().map(|&count| count.saturating_sub(1)).sum();
        prop_assert!(
            extra_evaluations <= torn_events,
            "{extra_evaluations} re-evaluations but only {torn_events} torn-write events"
        );
        if torn_events == 0 {
            prop_assert_eq!(
                counts.len(),
                (width * height) as usize,
                "without torn writes every key is evaluated exactly once"
            );
        }
    }
}

/// The supervised runner against a real on-disk store, with every fault kind in one
/// plan: the campaign recovers, the result matches the fault-free reference, and a
/// warm resume afterwards costs zero evaluations.
#[test]
fn supervised_jsonl_campaign_recovers_and_then_resumes_for_free() {
    let path =
        std::env::temp_dir().join(format!("wd_dist-supervision-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let space = GridSpace {
        width: 18,
        height: 9,
    };
    let objective = quantized(41);
    let reference = ShardedCampaign::new(3)
        .run(&space, &objective, &MemoryStore::new())
        .unwrap();

    let faults = FaultPlan::from_events(vec![
        FaultEvent {
            slot: 0,
            attempt: 0,
            after_batches: 1,
            kind: FaultKind::TornWrite,
        },
        FaultEvent {
            slot: 1,
            attempt: 0,
            after_batches: 0,
            kind: FaultKind::ShardDeath,
        },
        FaultEvent {
            slot: 2,
            attempt: 0,
            after_batches: 2,
            kind: FaultKind::Stall,
        },
        FaultEvent {
            slot: 1,
            attempt: 1,
            after_batches: 1,
            kind: FaultKind::EvalError,
        },
    ]);
    {
        let store: JsonlStore<(u32, u32)> = JsonlStore::open(&path).unwrap();
        let supervised = ShardedCampaign::new(3)
            .with_batch_size(8)
            .run_supervised(&space, &objective, &store, &faults, &RetryPolicy::default())
            .unwrap();
        assert_eq!(supervised.outcome.best_config, reference.best_config);
        assert_eq!(
            supervised.outcome.best_energy.to_bits(),
            reference.best_energy.to_bits()
        );
        assert!(supervised.supervision.resilience.recovered_from_faults());
        assert_eq!(
            store.len(),
            18 * 9,
            "every record persisted despite the tear"
        );
    }

    // the injected torn half-record is on disk; a fresh open skips it and the
    // store still answers the whole campaign
    let store: JsonlStore<(u32, u32)> = JsonlStore::open(&path).unwrap();
    assert_eq!(store.skipped_lines(), 1, "the torn fragment is on disk");
    assert_eq!(store.len(), 18 * 9);
    let counting = CountingObjective::new(&objective);
    let warm = ShardedCampaign::new(5)
        .run_supervised(
            &space,
            &counting,
            &store,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap();
    assert_eq!(counting.evaluations(), 0, "warm supervised resume is free");
    assert_eq!(warm.outcome.best_config, reference.best_config);
    assert_eq!(
        warm.outcome.best_energy.to_bits(),
        reference.best_energy.to_bits()
    );
    std::fs::remove_file(&path).unwrap();
}

/// Contract: `ShardedCampaign::run_supervised_observed` is bit-identical to
/// `ShardedCampaign::run_supervised` (the recorder only observes), and the
/// supervision events land in the registry.
#[test]
fn sharded_campaign_run_supervised_observed_is_bit_identical_to_run_supervised() {
    let space = GridSpace {
        width: 17,
        height: 11,
    };
    let objective = quantized(7);
    let campaign = ShardedCampaign::new(3).with_batch_size(8);
    let policy = RetryPolicy::default();
    let faults = FaultPlan::from_events(vec![
        FaultEvent {
            slot: 0,
            attempt: 0,
            after_batches: 1,
            kind: FaultKind::Stall,
        },
        FaultEvent {
            slot: 2,
            attempt: 0,
            after_batches: 0,
            kind: FaultKind::EvalError,
        },
    ]);

    let plain = campaign
        .run_supervised(&space, &objective, &MemoryStore::new(), &faults, &policy)
        .unwrap();

    let registry = Registry::new();
    let observed = campaign
        .run_supervised_observed(
            &space,
            &objective,
            &MemoryStore::new(),
            &faults,
            &policy,
            &registry,
            "chaos",
        )
        .unwrap();

    assert_eq!(observed.outcome.best_config, plain.outcome.best_config);
    assert_eq!(
        observed.outcome.best_energy.to_bits(),
        plain.outcome.best_energy.to_bits()
    );
    assert_eq!(observed.outcome.best_index, plain.outcome.best_index);
    assert_eq!(observed.supervision, plain.supervision);

    let events = registry.snapshot().events;
    assert_eq!(events.get("chaos/shard.lease_expired"), Some(&1));
    assert_eq!(events.get("chaos/shard.retried"), Some(&2));
    assert_eq!(events.get("chaos/merged"), Some(&1));
    assert!(events.contains_key("chaos/shard_started"));
    assert!(events.contains_key("chaos/shard_completed"));
}
