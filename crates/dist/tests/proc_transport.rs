//! End-to-end tests of the multi-process transport (`ProcCampaign` +
//! `wd-worker`): a real fleet of worker processes, a real `kill -9`
//! mid-campaign, lease fencing of a stalled zombie, and elastic slot counts
//! via a mid-campaign manifest rewrite.  Every scenario must converge to a
//! `CampaignOutcome` bit-identical to a fault-free single-process run, with
//! `ProcCampaign::run_observed` proving through `verification_evaluations`
//! that persisted keys are never re-evaluated.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;
use std::time::Duration;

use wd_dist::proc::{ProcManifest, WorkDir, EXIT_FENCED};
use wd_dist::{
    read_result_records, CampaignOutcome, ConfigKey, FaultEvent, FaultKind, FaultPlan, MemoryStore,
    ProcCampaign, ProcOutcome, WorkloadSpec,
};
use wd_obs::{FieldValue, Recorder};
use wd_opt::Objective;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_wd-worker")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wd-proc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bowl(width: u32, height: u32) -> WorkloadSpec {
    WorkloadSpec::GridBowl {
        width,
        height,
        center_x: width / 3,
        center_y: height / 2,
    }
}

/// The fault-free single-process reference every scenario must reproduce
/// bit for bit.
fn reference(spec: &WorkloadSpec, shards: usize, batch: usize) -> CampaignOutcome<(u32, u32)> {
    let store = MemoryStore::new();
    wd_dist::ShardedCampaign::new(shards)
        .with_batch_size(batch)
        .run(&spec.space(), spec, &store)
        .expect("reference campaign")
}

fn assert_bit_identical(
    got: &ProcOutcome,
    reference: &CampaignOutcome<(u32, u32)>,
    spec: &WorkloadSpec,
    work_root: &Path,
) {
    assert_eq!(got.outcome.best_config, reference.best_config);
    assert_eq!(got.outcome.best_index, reference.best_index);
    assert_eq!(
        got.outcome.best_energy.to_bits(),
        reference.best_energy.to_bits()
    );
    assert_eq!(got.outcome.evaluations, reference.evaluations);

    // Every persisted record must carry the exact bits the objective computes.
    let work = WorkDir::new(work_root);
    let (records, torn) = read_result_records(&work.merged()).expect("read merged log");
    assert_eq!(torn, 0, "the coordinator-owned merged log is never torn");
    assert_eq!(records.len(), reference.evaluations);
    for (key, energy) in records {
        let config = <(u32, u32)>::decode_key(&key).expect("stored keys decode");
        assert_eq!(
            energy.to_bits(),
            spec.evaluate(&config).to_bits(),
            "record {key} drifted from the deterministic objective"
        );
    }
}

/// Collects `(scope, kind, fields)` triples so tests can assert on the
/// transport lifecycle events.
type EventRow = (String, String, Vec<(String, String)>);

#[derive(Debug, Default)]
struct CollectingRecorder {
    events: Mutex<Vec<EventRow>>,
}

impl CollectingRecorder {
    fn kinds(&self) -> Vec<String> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .map(|(_, kind, _)| kind.clone())
            .collect()
    }
}

impl Recorder for CollectingRecorder {
    fn event(&self, scope: &str, kind: &str, fields: &[(&str, FieldValue)]) {
        let fields = fields
            .iter()
            .map(|(name, value)| (name.to_string(), format!("{value:?}")))
            .collect();
        self.events
            .lock()
            .unwrap()
            .push((scope.to_string(), kind.to_string(), fields));
    }
}

#[test]
fn fault_free_fleet_matches_the_single_process_reference() {
    let spec = bowl(40, 30);
    let dir = scratch_dir("clean");
    let recorder = CollectingRecorder::default();
    let campaign = ProcCampaign::new(4)
        .with_batch_size(16)
        .with_worker_bin(worker_bin());
    let got = campaign
        .run_observed(&spec, &dir, &recorder, "proc")
        .expect("fleet campaign");

    // 4 slots * RANGES_PER_SLOT ranges, all spawned as real processes.
    assert!(got.report.spawned >= 4, "report: {:?}", got.report);
    assert_eq!(got.report.spawned, got.report.completed);
    assert_eq!(got.report.failed_attempts, 0);
    assert_eq!(got.report.worker_evaluations, 40 * 30);
    assert_eq!(got.report.verification_evaluations, 0);
    assert_eq!(got.outcome.stats.misses, 0);

    let kinds = recorder.kinds();
    assert!(kinds.iter().any(|k| k == "worker.spawned"));
    assert!(kinds.iter().any(|k| k == "worker.exited"));
    assert!(kinds.iter().any(|k| k == "merged"));

    assert_bit_identical(&got, &reference(&spec, 4, 16), &spec, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_dash_nine_mid_campaign_recovers_bit_identically() {
    let spec = bowl(48, 25); // 1200 configurations, 12 ranges of 100
    let dir = scratch_dir("kill9");
    // Slot 1's first attempt stalls indefinitely after 2 durable batches; the
    // test then delivers a real `kill -9` to that process.  The staleness
    // horizon is kept far away so the kill (not a lease fence) is what the
    // coordinator observes.
    let campaign = ProcCampaign::new(3)
        .with_batch_size(8)
        .with_worker_bin(worker_bin())
        .with_faults(FaultPlan::from_events(vec![FaultEvent {
            slot: 1,
            attempt: 0,
            after_batches: 2,
            kind: FaultKind::Stall,
        }]))
        .with_stall_ms(30_000)
        .with_timing(
            Duration::from_millis(10),
            Duration::from_secs(8),
            Duration::from_millis(5),
        );

    let work = WorkDir::new(&dir);
    let pids_path = work.pids();
    let killer = std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if std::time::Instant::now() > deadline {
                panic!("no slot-1 worker appeared in {}", pids_path.display());
            }
            if let Ok(text) = std::fs::read_to_string(&pids_path) {
                if let Some(pid) = text.lines().find_map(|line| {
                    let mut parts = line.split(' ');
                    (parts.next() == Some("1")).then(|| parts.nth(1))?
                }) {
                    // Give the worker time to reach its stall point, then
                    // deliver the uncatchable signal.
                    std::thread::sleep(Duration::from_millis(300));
                    let status = Command::new("kill")
                        .args(["-9", pid])
                        .status()
                        .expect("spawn kill");
                    assert!(status.success(), "kill -9 {pid} failed");
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    let got = campaign
        .run(&spec, &dir)
        .expect("campaign survives kill -9");
    killer.join().expect("killer thread");

    // The killed attempt had exactly 2 batches (16 records) durable; those are
    // salvaged and never re-evaluated, the remaining 84 are re-run by the
    // respawned worker.  Nothing else fails.
    assert!(got.report.respawned >= 1, "report: {:?}", got.report);
    assert!(got.report.failed_attempts >= 1);
    assert_eq!(got.report.worker_evaluations, 1200 - 16);
    assert!(got.report.salvaged_records >= 16);
    assert_eq!(got.report.verification_evaluations, 0);

    assert_bit_identical(&got, &reference(&spec, 3, 8), &spec, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fenced_zombie_abandons_without_clobbering_committed_records() {
    let spec = bowl(30, 20); // 600 configurations, 12 ranges of 50
    let dir = scratch_dir("zombie");
    // Slot 0's first attempt stalls past the staleness horizon: the
    // coordinator rotates the grant's generation (the fencing token), salvages
    // the partial segment, and re-queues the range.  The zombie wakes with the
    // old token, must observe the mismatch, and exit EXIT_FENCED having
    // written nothing after the fence.
    let campaign = ProcCampaign::new(3)
        .with_batch_size(5)
        .with_worker_bin(worker_bin())
        .with_faults(FaultPlan::from_events(vec![FaultEvent {
            slot: 0,
            attempt: 0,
            after_batches: 1,
            kind: FaultKind::Stall,
        }]))
        .with_stall_ms(1_200)
        .with_timing(
            Duration::from_millis(20),
            Duration::from_millis(250),
            Duration::from_millis(10),
        );
    let recorder = CollectingRecorder::default();
    let got = campaign
        .run_observed(&spec, &dir, &recorder, "proc")
        .expect("campaign survives the zombie");

    assert!(got.report.fenced >= 1, "report: {:?}", got.report);
    assert!(
        got.report.fenced_exits >= 1,
        "the zombie must observe the rotated token and exit {EXIT_FENCED}: {:?}",
        got.report
    );
    assert!(got.report.worker_evaluations <= 600);
    assert_eq!(got.report.verification_evaluations, 0);
    assert!(recorder.kinds().iter().any(|k| k == "worker.fenced"));

    assert_bit_identical(&got, &reference(&spec, 3, 5), &spec, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_rewrite_grows_the_fleet_mid_campaign() {
    let spec = bowl(40, 40); // 1600 configurations, 8 ranges of 200
    let dir = scratch_dir("elastic");
    // Both initial slots stall briefly (no fence — the horizon is far away),
    // pinning six ranges in the queue; a mid-campaign manifest rewrite then
    // raises the slot count and the new slots must pull that queued work.
    let campaign = ProcCampaign::new(2)
        .with_batch_size(2)
        .with_worker_bin(worker_bin())
        .with_faults(FaultPlan::from_events(vec![
            FaultEvent {
                slot: 0,
                attempt: 0,
                after_batches: 0,
                kind: FaultKind::Stall,
            },
            FaultEvent {
                slot: 1,
                attempt: 0,
                after_batches: 0,
                kind: FaultKind::Stall,
            },
        ]))
        .with_stall_ms(500)
        .with_timing(
            Duration::from_millis(10),
            Duration::from_secs(10),
            Duration::from_millis(5),
        );

    let work = WorkDir::new(&dir);
    let manifest_path = work.manifest();
    let grower = std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !manifest_path.exists() {
            assert!(
                std::time::Instant::now() < deadline,
                "manifest never appeared"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(120));
        ProcManifest::rewrite_slots(&manifest_path, 5).expect("rewrite slots");
    });

    let got = campaign.run(&spec, &dir).expect("elastic campaign");
    grower.join().expect("grower thread");

    // Slots 2.. only exist after the rewrite; seeing one in the spawn ledger
    // proves the coordinator picked up the new capacity mid-campaign.
    let pids = std::fs::read_to_string(work.pids()).expect("pids ledger");
    let grew = pids.lines().any(|line| {
        line.split(' ')
            .next()
            .and_then(|slot| slot.parse::<usize>().ok())
            .is_some_and(|slot| slot >= 2)
    });
    assert!(grew, "no worker ever ran on an elastic slot:\n{pids}");
    assert_eq!(got.report.verification_evaluations, 0);

    assert_bit_identical(&got, &reference(&spec, 2, 2), &spec, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}
