//! Crash-consistency property tests for [`JsonlStore`]: a log truncated at **every
//! possible byte offset** still opens, loads exactly the records whose lines
//! survived complete, reports the torn tail via `skipped_lines()`, and
//! [`JsonlStore::open_recovering`] + compaction round-trips the surviving records
//! bit-identically.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use wd_dist::{JsonlStore, ResultStore};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn unique_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "wd_dist-{tag}-{}-{}.jsonl",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn cleanup(store: &JsonlStore<u32>, path: &std::path::Path) {
    for generation in store.retained_generations() {
        let _ = std::fs::remove_file(store.generation_file(generation));
    }
    let _ = std::fs::remove_file(path.with_extension("jsonl.quarantine"));
    let mut quarantine = path.as_os_str().to_owned();
    quarantine.push(".quarantine");
    let _ = std::fs::remove_file(std::path::PathBuf::from(quarantine));
    let _ = std::fs::remove_file(path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Truncate the log after every prefix length in bytes: the store must load
    /// the records of every complete line (bit-exact), count the torn tail as
    /// exactly one skipped line, and recover to a clean, compacted log that
    /// round-trips the same records.
    #[test]
    fn truncation_at_every_byte_offset_loads_a_valid_prefix(
        energies in proptest::collection::vec(-4.0f64..4.0, 1..20),
        offset_salt in 0u64..u64::MAX,
    ) {
        let path = unique_path("truncation");
        let _ = std::fs::remove_file(&path);

        // write the full log: one header line, then one record per key in call order
        let store: JsonlStore<u32> = JsonlStore::open(&path).unwrap();
        for (key, &energy) in energies.iter().enumerate() {
            store.record(&(key as u32), energy);
        }
        store.flush().unwrap();
        drop(store);
        let full = std::fs::read(&path).unwrap();
        // line boundaries: newline positions delimit complete lines
        let newline_ends: Vec<usize> = full
            .iter()
            .enumerate()
            .filter(|&(_, &byte)| byte == b'\n')
            .map(|(at, _)| at + 1)
            .collect();
        let header_end = newline_ends[0];

        // exhaustively truncating every offset keeps the proptest case count low
        // while still covering every tear position of this log; the salt only
        // rotates which offset goes first so early failures vary across cases
        let rotate = (offset_salt % (full.len() as u64 + 1)) as usize;
        for step in 0..=full.len() {
            let offset = (step + rotate) % (full.len() + 1);
            let truncated = unique_path("truncated");
            std::fs::write(&truncated, &full[..offset]).unwrap();

            // records on complete lines (header excluded) survive; one torn tail
            // (or torn header) is at most one skipped line
            let complete_lines = newline_ends.iter().filter(|&&end| end <= offset).count();
            let has_header = offset >= header_end;
            let prefix_records = complete_lines - usize::from(has_header);
            // at most one line can be torn: the partial tail (which, below the
            // first newline, is the header itself).  A torn record tail whose
            // fields all survived intact (e.g. only the closing brace was lost)
            // may still load — but then it must load the TRUE value; anything
            // less than bit-exact must be skipped, never guessed at.
            let torn_tail = !newline_ends.contains(&offset) && offset > 0;

            let reopened: JsonlStore<u32> = JsonlStore::open(&truncated).unwrap();
            let loaded = reopened.len();
            prop_assert!(
                loaded == prefix_records || (torn_tail && loaded == prefix_records + 1),
                "offset {}: {} records loaded from a {}-complete-line prefix",
                offset,
                loaded,
                prefix_records
            );
            // the torn tail resolves exactly one way: loaded intact (all fields
            // survived), recognised as intact metadata (header/stats), or skipped —
            // and a clean prefix never skips anything
            prop_assert!(
                reopened.skipped_lines() <= usize::from(torn_tail),
                "offset {}: {} lines skipped without a torn tail",
                offset,
                reopened.skipped_lines()
            );
            for (key, energy) in energies.iter().enumerate().take(loaded) {
                prop_assert_eq!(
                    reopened.lookup(&(key as u32)).map(f64::to_bits),
                    Some(energy.to_bits()),
                    "offset {}: record {} must survive bit-identically",
                    offset,
                    key
                );
            }
            let skipped = reopened.skipped_lines();
            drop(reopened);

            // recovery quarantines the torn tail and compacts; the clean log
            // round-trips the same records bit-identically
            let (recovered, report) = JsonlStore::<u32>::open_recovering(&truncated).unwrap();
            prop_assert_eq!(report.quarantined, skipped);
            prop_assert_eq!(report.records, loaded);
            prop_assert_eq!(report.rewritten, skipped > 0);
            prop_assert_eq!(recovered.skipped_lines(), 0);
            drop(recovered);

            let clean: JsonlStore<u32> = JsonlStore::open(&truncated).unwrap();
            prop_assert_eq!(clean.len(), loaded);
            prop_assert_eq!(clean.skipped_lines(), 0);
            for (key, energy) in energies.iter().enumerate().take(loaded) {
                prop_assert_eq!(
                    clean.lookup(&(key as u32)).map(f64::to_bits),
                    Some(energy.to_bits()),
                    "offset {}: record {} must survive recovery bit-identically",
                    offset,
                    key
                );
            }
            cleanup(&clean, &truncated);
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn open_recovering_an_empty_file_is_a_clean_noop() {
    let path = unique_path("empty");
    std::fs::write(&path, "").unwrap();
    let (store, report) = JsonlStore::<u32>::open_recovering(&path).unwrap();
    assert_eq!(report.records, 0);
    assert_eq!(report.quarantined, 0);
    assert!(!report.rewritten);
    assert_eq!(store.len(), 0);
    assert_eq!(store.skipped_lines(), 0);
    // the recovered handle is a fully working store
    store.record(&1, 0.5);
    store.flush().unwrap();
    assert_eq!(store.lookup(&1), Some(0.5));
    cleanup(&store, &path);
}

#[test]
fn open_recovering_a_lone_half_record_quarantines_it() {
    let path = unique_path("half");
    // a crash mid-write of the very first record: no newline, unparseable
    std::fs::write(&path, "{\"config\":\"7\",\"ener").unwrap();
    let (store, report) = JsonlStore::<u32>::open_recovering(&path).unwrap();
    assert_eq!(report.records, 0);
    assert_eq!(report.quarantined, 1);
    assert!(report.rewritten);
    assert_eq!(store.len(), 0);
    assert_eq!(store.skipped_lines(), 0);
    assert_eq!(store.lookup(&7), None);
    // the torn bytes are preserved in the quarantine sidecar, not dropped
    let mut quarantine = path.as_os_str().to_owned();
    quarantine.push(".quarantine");
    let sidecar = std::fs::read_to_string(std::path::PathBuf::from(quarantine)).unwrap();
    assert!(sidecar.contains("ener"));
    cleanup(&store, &path);
}
