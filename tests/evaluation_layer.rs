//! Integration tests for the unified evaluation layer: caching, batching and the
//! parallel enumeration path must all be observationally identical to plain
//! one-at-a-time evaluation.

use workdist::autotune::{
    ConfigurationSpace, MeasurementEvaluator, MethodKind, MethodRunner, SystemConfiguration,
    TrainingCampaign,
};
use workdist::dna::Genome;
use workdist::ml::BoostingParams;
use workdist::opt::{
    CachedObjective, Enumeration, Objective, ParallelEnumeration, SearchSpace, SimulatedAnnealing,
};
use workdist::platform::HeterogeneousPlatform;

fn evaluator() -> MeasurementEvaluator {
    MeasurementEvaluator::new(HeterogeneousPlatform::emil(), Genome::Human.workload())
}

#[test]
fn cached_evaluation_is_identical_to_uncached_evaluation() {
    let evaluator = evaluator();
    let cached = CachedObjective::new(&evaluator);
    let space = ConfigurationSpace::tiny();
    let configs = space.enumerate().unwrap();

    for config in &configs {
        assert_eq!(
            cached.evaluate(config),
            evaluator.evaluate(config),
            "cold pass, {config}"
        );
    }
    for config in &configs {
        assert_eq!(
            cached.evaluate(config),
            evaluator.evaluate(config),
            "warm pass, {config}"
        );
    }
    let stats = cached.stats();
    assert_eq!(stats.misses, configs.len());
    assert_eq!(stats.hits, configs.len());
    assert_eq!(cached.len(), configs.len());
}

#[test]
fn batch_evaluation_matches_one_at_a_time_evaluation() {
    let evaluator = evaluator();
    let configs = ConfigurationSpace::tiny().enumerate().unwrap();
    let singles: Vec<f64> = configs.iter().map(|c| evaluator.evaluate(c)).collect();
    assert_eq!(evaluator.evaluate_batch(&configs), singles);

    // the prediction evaluator honours the same contract
    let platform = HeterogeneousPlatform::emil();
    let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
    let prediction = models.prediction_evaluator(Genome::Human.workload());
    let singles: Vec<f64> = configs.iter().map(|c| prediction.evaluate(c)).collect();
    assert_eq!(prediction.evaluate_batch(&configs), singles);
}

#[test]
fn parallel_enumeration_is_deterministic_across_partitionings() {
    // The batched parallel path must return the same best configuration and energy as
    // the sequential scan for every batch size (and therefore for every thread count:
    // work distribution over rayon workers only changes which worker scores which
    // batch, never the reduction result).
    let evaluator = evaluator();
    let grid = ConfigurationSpace::tiny();
    let reference = Enumeration::sequential().run(&grid, &evaluator);
    for batch_size in [1usize, 3, 17, 128, 4096] {
        let outcome = ParallelEnumeration::with_batch_size(batch_size).run(&grid, &evaluator);
        assert_eq!(
            outcome.best_config, reference.best_config,
            "batch size {batch_size}"
        );
        assert_eq!(
            outcome.best_energy, reference.best_energy,
            "batch size {batch_size}"
        );
        assert_eq!(outcome.evaluations, reference.evaluations);
    }
}

#[test]
fn annealing_behind_the_cache_is_identical_to_uncached_annealing() {
    // Memoization must not change the search trajectory, only skip re-measurement.
    let evaluator = evaluator();
    let space = ConfigurationSpace::tiny();
    let sa = SimulatedAnnealing::with_budget_and_range(400, 2.0, 0.02, 99);

    let plain = sa.run(&space, &evaluator);
    let cached = CachedObjective::new(&evaluator);
    let memoized = sa.run(&space, &cached);

    assert_eq!(plain.best_config, memoized.best_config);
    assert_eq!(plain.best_energy, memoized.best_energy);
    assert_eq!(plain.evaluations, memoized.evaluations);
    let stats = cached.stats();
    assert_eq!(stats.requests(), memoized.evaluations);
    assert!(
        stats.hits > 0,
        "a 400-iteration walk on a tiny space must revisit configurations"
    );
    assert!(stats.misses <= ConfigurationSpace::tiny().total_configurations() as usize);
}

#[test]
fn method_outcomes_surface_cache_counters() {
    let platform = HeterogeneousPlatform::emil();
    let workload = Genome::Cat.workload();
    let runner = MethodRunner::new(&platform, &workload, None, 5)
        .with_grid(ConfigurationSpace::tiny())
        .with_space(ConfigurationSpace::tiny());

    let em = runner.run(MethodKind::Em, 0).unwrap();
    assert_eq!(
        em.cache.hits, 0,
        "enumeration never revisits a configuration"
    );
    assert_eq!(em.cache.misses, em.evaluations);
    assert_eq!(em.experiments(), em.evaluations);

    let sam = runner.run(MethodKind::Sam, 500).unwrap();
    assert_eq!(sam.cache.requests(), sam.evaluations);
    assert!(sam.cache.hits > 0);
    assert!(
        sam.experiments() < sam.evaluations,
        "with memoization SAM performs fewer experiments ({}) than requests ({})",
        sam.experiments(),
        sam.evaluations
    );
}

#[test]
fn warm_cache_answers_full_enumeration_without_new_experiments() {
    let evaluator = evaluator();
    let grid = ConfigurationSpace::tiny();
    let cached = CachedObjective::new(&evaluator);

    let cold = ParallelEnumeration::new().run(&grid, &cached);
    let experiments_after_cold = cached.stats().misses;
    let warm = ParallelEnumeration::new().run(&grid, &cached);

    assert_eq!(cold.best_config, warm.best_config);
    assert_eq!(cold.best_energy, warm.best_energy);
    assert_eq!(
        cached.stats().misses,
        experiments_after_cold,
        "the warm pass must be answered entirely from the cache"
    );
    assert_eq!(cached.stats().hits as u128, grid.total_configurations());
}

#[test]
fn baseline_configs_evaluate_identically_through_every_path() {
    // One configuration, four routes to its energy: direct, trait, batch, cached.
    let evaluator = evaluator();
    let config = SystemConfiguration::host_only_baseline();
    let direct = evaluator.energy(&config);
    let via_trait = Objective::evaluate(&evaluator, &config);
    let via_batch = evaluator.evaluate_batch(std::slice::from_ref(&config))[0];
    let cached = CachedObjective::new(&evaluator);
    let via_cache = cached.evaluate(&config);
    assert_eq!(direct, via_trait);
    assert_eq!(direct, via_batch);
    assert_eq!(direct, via_cache);
}
