//! Integration tests of the DNA application against the platform/workload bridge.

use workdist::dna::{DfaMatcher, DnaSequence, DnaWorkload, Genome, MotifSet, ParallelScanner};
use workdist::platform::{Affinity, ExecutionConfig, HeterogeneousPlatform};

#[test]
fn split_scanning_is_exact_for_every_ratio() {
    // The work-distribution semantics of the paper must never lose or double-count a
    // motif occurrence, whatever the split ratio.
    let motifs = MotifSet::reference();
    let matcher = DfaMatcher::compile(&motifs);
    let sequence = DnaSequence::random_with_motif(1_500_000, 0.42, 99, "GGCCAATCT", 120);
    let scanner = ParallelScanner::new(4).with_chunk_bytes(64 * 1024);
    let total = matcher.count_matches(sequence.bases());
    assert!(total >= 120);

    for percent in (0..=100).step_by(5) {
        let (host, device) =
            scanner.count_matches_split(&matcher, sequence.bases(), percent as f64 / 100.0);
        assert_eq!(host + device, total, "split at {percent}%");
    }
}

#[test]
fn genome_workloads_drive_the_simulator() {
    // DnaWorkload bridges the application to the platform simulator: nominal sizes in,
    // plausible execution times out.
    let platform = HeterogeneousPlatform::emil().without_noise();
    for genome in Genome::ALL {
        let job = DnaWorkload::for_genome(genome);
        let profile = job.profile();
        assert_eq!(profile.bytes, genome.nominal_bytes());

        let host = platform
            .execute_host_only(&profile, &ExecutionConfig::new(48, Affinity::Scatter))
            .unwrap();
        let device = platform
            .execute_device_only(&profile, &ExecutionConfig::new(240, Affinity::Balanced))
            .unwrap();
        // paper anchors: host-only runs take well under 1 s at 48 threads, device-only
        // runs are slower but in the same order of magnitude
        assert!(
            host.t_total > 0.3 && host.t_total < 1.2,
            "{genome}: host {}",
            host.t_total
        );
        assert!(
            device.t_total > host.t_total && device.t_total < 2.0,
            "{genome}: device {}",
            device.t_total
        );
    }
}

#[test]
fn larger_genomes_take_longer() {
    let platform = HeterogeneousPlatform::emil().without_noise();
    let cfg = ExecutionConfig::new(48, Affinity::Scatter);
    let mut times: Vec<(u64, f64)> = Genome::ALL
        .iter()
        .map(|g| {
            (
                g.nominal_bytes(),
                platform
                    .execute_host_only(&g.workload(), &cfg)
                    .unwrap()
                    .t_total,
            )
        })
        .collect();
    times.sort_by_key(|(bytes, _)| *bytes);
    for pair in times.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "time must grow with genome size: {times:?}"
        );
    }
}

#[test]
fn matcher_workload_and_simulated_split_are_consistent() {
    // The fraction handed to the simulator and the fraction used to split the real scan
    // describe the same bytes.
    let job = DnaWorkload::for_genome(Genome::Cat);
    let (host_bytes, device_bytes) = job.split_bytes(70);
    assert_eq!(host_bytes + device_bytes, job.bytes);
    let host_profile = job.profile_fraction(0.7);
    // byte-rounding between the two paths stays within one byte per percent step
    assert!((host_profile.bytes as i64 - host_bytes as i64).abs() <= 100);

    // the real matcher agrees on a scaled-down copy of the same genome
    let matcher = job.compile();
    let sequence = Genome::Cat.synthesize(500);
    let scanner = ParallelScanner::new(2);
    let total = scanner.count_matches(&matcher, sequence.bases());
    let (host_matches, device_matches) =
        scanner.count_matches_split(&matcher, sequence.bases(), 0.7);
    assert_eq!(host_matches + device_matches, total);
}
