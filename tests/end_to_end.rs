//! End-to-end integration tests: the full autotuning pipeline across all crates.

use workdist::autotune::{Autotuner, ConfigurationSpace, MethodKind};
use workdist::dna::Genome;
use workdist::platform::{Affinity, HeterogeneousPlatform};

#[test]
fn quick_autotuner_runs_all_four_methods_and_beats_the_baselines() {
    let mut tuner = Autotuner::quick_setup(1)
        .with_grid(ConfigurationSpace::tiny())
        .with_space(ConfigurationSpace::tiny());

    let em = tuner.run(MethodKind::Em, 0).unwrap();
    let eml = tuner.run(MethodKind::Eml, 0).unwrap();
    let sam = tuner.run(MethodKind::Sam, 250).unwrap();
    let saml = tuner.run(MethodKind::Saml, 250).unwrap();

    // EM enumerates the whole (tiny) grid and is the measured optimum of that grid.
    assert_eq!(
        em.evaluations as u128,
        ConfigurationSpace::tiny().total_configurations()
    );
    for outcome in [&eml, &sam, &saml] {
        assert!(
            outcome.measured_energy >= em.measured_energy * 0.98,
            "{} ({}) should not beat the EM optimum ({}) on the same grid by more than noise",
            outcome.method,
            outcome.measured_energy,
            em.measured_energy
        );
    }

    // The optimum of the combined execution beats both single-device baselines
    // (the paper's headline performance result).
    let speedup = tuner.speedup(&em);
    assert!(
        speedup.speedup_vs_host() > 1.0,
        "speedup vs host {}",
        speedup.speedup_vs_host()
    );
    assert!(speedup.speedup_vs_device() > 1.0);
    // and the device-only baseline is the slower of the two, as in the paper
    assert!(speedup.device_only_seconds > speedup.host_only_seconds);
}

#[test]
fn saml_matches_em_within_a_reasonable_gap_using_few_evaluations() {
    // The paper's headline: ~1 000 SA iterations (≈5 % of the 19 926 EM experiments)
    // give a configuration within ~10 % of the optimum.  On the reduced setup we accept
    // a looser bound but demand the evaluation-count relationship.
    let mut tuner = Autotuner::quick_setup(3);
    let saml = tuner.run(MethodKind::Saml, 1000).unwrap();
    let em = tuner.run(MethodKind::Em, 0).unwrap();

    assert!(em.evaluations >= 19_000, "EM enumerates the full grid");
    assert!(
        saml.evaluations <= 1_100,
        "SAML stays within its iteration budget"
    );
    let evaluation_ratio = saml.evaluations as f64 / em.evaluations as f64;
    assert!(
        evaluation_ratio < 0.06,
        "SAML performed {:.1}% of EM's experiments",
        evaluation_ratio * 100.0
    );

    let gap = (saml.measured_energy - em.measured_energy) / em.measured_energy;
    assert!(
        gap < 0.35,
        "SAML ({}) should be within 35% of the EM optimum ({}), gap {:.1}%",
        saml.measured_energy,
        em.measured_energy,
        gap * 100.0
    );
}

#[test]
fn paper_regimes_hold_for_every_genome() {
    // For every genome of the paper, the EM optimum on the full grid uses both devices
    // and assigns the larger share to the host (the paper finds 60/40 - 70/30 splits).
    let platform = HeterogeneousPlatform::emil().without_noise();
    for genome in Genome::ALL {
        let evaluator =
            workdist::autotune::MeasurementEvaluator::new(platform.clone(), genome.workload());
        use workdist::opt::Objective;

        // coarse sweep over the interesting part of the space (48 host threads,
        // 240 device threads, the affinities the paper found best) — scored as one
        // batch through the unified evaluation layer
        let sweep: Vec<workdist::autotune::SystemConfiguration> = (0..=100u32)
            .map(|percent| {
                workdist::autotune::SystemConfiguration::with_host_percent(
                    48,
                    Affinity::Scatter,
                    240,
                    Affinity::Balanced,
                    percent,
                )
            })
            .collect();
        let (best_config, best_energy) = sweep
            .iter()
            .zip(evaluator.evaluate_batch(&sweep))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(config, energy)| (config.clone(), energy))
            .unwrap();
        assert!(
            best_config.uses_host() && best_config.uses_device(),
            "{genome}: the optimum uses both devices"
        );
        assert!(
            (45.0..=85.0).contains(&best_config.host_percent()),
            "{genome}: optimal host share {}% outside the paper's 60/40-70/30 regime",
            best_config.host_percent()
        );

        let host_only =
            evaluator.energy(&workdist::autotune::SystemConfiguration::host_only_baseline());
        let device_only =
            evaluator.energy(&workdist::autotune::SystemConfiguration::device_only_baseline());
        let speedup_host = host_only / best_energy;
        let speedup_device = device_only / best_energy;
        assert!(
            (1.2..=2.3).contains(&speedup_host),
            "{genome}: speedup vs host-only {speedup_host} outside the paper's range"
        );
        assert!(
            (1.5..=2.8).contains(&speedup_device),
            "{genome}: speedup vs device-only {speedup_device} outside the paper's range"
        );
        assert!(
            speedup_device > speedup_host,
            "{genome}: device-only is the slower baseline"
        );
    }
}

#[test]
fn facade_reexports_are_usable_together() {
    // The facade crate exposes all member crates under stable names.
    let platform: HeterogeneousPlatform = HeterogeneousPlatform::emil();
    assert_eq!(platform.accelerator_count(), 1);
    assert!(workdist::PAPER.contains("Memeti"));
    assert_eq!(workdist::VERSION, env!("CARGO_PKG_VERSION"));

    // types from different crates interoperate
    let workload = workdist::dna::Genome::Dog.workload();
    let config = workdist::autotune::SystemConfiguration::with_host_percent(
        24,
        workdist::platform::Affinity::Scatter,
        120,
        workdist::platform::Affinity::Balanced,
        50,
    );
    let measurement = platform
        .execute(
            &workload,
            &config.partition(),
            &config.host_execution(),
            &[config.device_execution()],
        )
        .unwrap();
    assert!(measurement.t_total > 0.0);
}
