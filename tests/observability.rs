//! End-to-end tests of the observability layer through the `workdist` facade:
//!
//! * observing a method run never perturbs it — `MethodRunner::run_observed` is
//!   bit-identical to `MethodRunner::run` for every method, recorder or not;
//! * the telemetry a run publishes into a `Registry` is complete enough to audit the
//!   run (per-method span, cache/table counters, execution-stat gauges, iteration
//!   summaries);
//! * a `JsonlExporter` file alone — no in-process state — reconstructs each
//!   method's best-energy series and full optimization trace, bit for bit.

use workdist::autotune::{ConfigurationSpace, MethodKind, MethodRunner, TrainingCampaign};
use workdist::dna::Genome;
use workdist::ml::BoostingParams;
use workdist::obs::{EventLog, JsonlExporter, Registry};
use workdist::opt::OptimizationTrace;
use workdist::platform::HeterogeneousPlatform;

const METHODS: [MethodKind; 5] = [
    MethodKind::Em,
    MethodKind::Eml,
    MethodKind::Sam,
    MethodKind::Saml,
    MethodKind::Gaml,
];
const BUDGET: usize = 300;

fn setup() -> (HeterogeneousPlatform, workdist::autotune::TrainedModels) {
    let platform = HeterogeneousPlatform::emil();
    let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
    (platform, models)
}

#[test]
fn observed_runs_are_bit_identical_for_every_method() {
    let (platform, models) = setup();
    let workload = Genome::Cat.workload();
    let runner = MethodRunner::new(&platform, &workload, Some(&models), 11)
        .with_grid(ConfigurationSpace::tiny())
        .with_space(ConfigurationSpace::tiny());

    for method in METHODS {
        let plain = runner.run(method, BUDGET).unwrap();
        let registry = Registry::new();
        let observed = runner.run_observed(method, BUDGET, &registry).unwrap();

        assert_eq!(observed.best_config, plain.best_config, "{method:?}");
        assert_eq!(
            observed.search_energy.to_bits(),
            plain.search_energy.to_bits(),
            "{method:?}"
        );
        assert_eq!(
            observed.measured_energy.to_bits(),
            plain.measured_energy.to_bits(),
            "{method:?}"
        );
        assert_eq!(observed.evaluations, plain.evaluations, "{method:?}");
        assert_eq!(observed.cache, plain.cache, "{method:?}");
        assert_eq!(observed.stats, plain.stats, "{method:?}");
        assert_eq!(
            observed.trace.records(),
            plain.trace.records(),
            "{method:?}"
        );

        // the run left its span on the registry, under the lowercase method name
        let scope = method.name().to_ascii_lowercase();
        let snapshot = registry.snapshot();
        let span = snapshot
            .spans
            .get(&format!("{scope}.run"))
            .unwrap_or_else(|| panic!("no {scope}.run span recorded"));
        assert_eq!(span.count, 1);
    }
}

#[test]
fn registry_telemetry_is_complete_enough_to_audit_a_saml_run() {
    let (platform, models) = setup();
    let workload = Genome::Cat.workload();
    let runner = MethodRunner::new(&platform, &workload, Some(&models), 11)
        .with_grid(ConfigurationSpace::tiny())
        .with_space(ConfigurationSpace::tiny());

    let registry = Registry::new();
    let outcome = runner
        .run_observed(MethodKind::Saml, BUDGET, &registry)
        .unwrap();
    let snapshot = registry.snapshot();

    // iteration summary: every trace record was published, best energy bit-exact
    let iterations = snapshot
        .iterations
        .get("saml")
        .expect("saml iteration summary");
    assert_eq!(iterations.count as usize, outcome.trace.len());
    assert_eq!(
        iterations.last_best_energy.to_bits(),
        outcome.search_energy.to_bits()
    );

    // lazy-table counters match the outcome's cache view of the same atomics
    assert_eq!(
        snapshot.counters["saml.lazy.probes"],
        (outcome.cache.hits + outcome.cache.misses) as u64
    );
    assert_eq!(
        snapshot.counters["saml.lazy.model_walks"],
        outcome.cache.misses as u64
    );

    // the final re-measurement's execution breakdown is published as gauges
    assert_eq!(
        snapshot.gauges["saml.exec.host_bytes"],
        outcome.stats.host_bytes as f64
    );
    assert!(snapshot
        .gauges
        .contains_key("saml.exec.device_compute_seconds"));

    // the run span carries the headline numbers of the outcome
    assert_eq!(
        snapshot.gauges["saml.run.iterations"],
        outcome.trace.len() as f64
    );
    assert_eq!(
        snapshot.gauges["saml.run.measured_energy"].to_bits(),
        outcome.measured_energy.to_bits()
    );
}

#[test]
fn exporter_file_alone_reconstructs_every_best_energy_series() {
    let (platform, models) = setup();
    let workload = Genome::Human.workload();
    let runner = MethodRunner::new(&platform, &workload, Some(&models), 23)
        .with_grid(ConfigurationSpace::tiny())
        .with_space(ConfigurationSpace::tiny());

    // one "campaign": three observed method runs streaming into a single event file
    let path = std::env::temp_dir().join(format!("wd_obs_e2e_{}.jsonl", std::process::id()));
    let exporter = JsonlExporter::create(&path).expect("create the event file");
    let campaign = [MethodKind::Sam, MethodKind::Saml, MethodKind::Gaml];
    let outcomes: Vec<_> = campaign
        .iter()
        .map(|&method| runner.run_observed(method, BUDGET, &exporter).unwrap())
        .collect();
    exporter.flush().expect("flush the event file");
    drop(exporter);

    // replay from the file alone: nothing of the in-process run survives here
    let log = EventLog::read(&path).expect("read back the event file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(log.skipped_lines, 0, "every line must parse");

    for (method, outcome) in campaign.iter().zip(&outcomes) {
        let scope = method.name().to_ascii_lowercase();

        // best-energy series: bit-for-bit equal to the trace's own series
        let replayed = log.best_energy_series(&scope);
        let expected = outcome.trace.best_energy_series();
        assert_eq!(replayed.len(), expected.len(), "{scope}");
        for (a, b) in replayed.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits(), "{scope}");
        }

        // and the full trace reconstructs from the iteration events
        let reconstructed = OptimizationTrace::from_events(&log.iteration_events(&scope));
        assert_eq!(reconstructed.records(), outcome.trace.records(), "{scope}");
    }
}
