//! Acceptance tests for the `wd_dist` subsystem: a sharded campaign over the paper's
//! Table-I enumeration grid is bit-identical to single-node enumeration, and a
//! repeated campaign against a warm on-disk store performs zero new evaluations.

use std::path::PathBuf;

use workdist::autotune::{
    campaign_context, run_enumeration_sharded, ConfigurationSpace, MeasurementEvaluator,
    MethodKind, MethodRunner, SystemConfiguration,
};
use workdist::dist::{JsonlStore, MemoryStore, ResultStore, ShardedCampaign};
use workdist::dna::Genome;
use workdist::opt::{CacheStats, CountingObjective, ParallelEnumeration};
use workdist::platform::HeterogeneousPlatform;

fn evaluator() -> MeasurementEvaluator {
    MeasurementEvaluator::new(HeterogeneousPlatform::emil(), Genome::Human.workload())
}

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("workdist-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn four_shard_campaign_over_the_table_i_grid_is_bit_identical_and_resumes_free() {
    let evaluator = evaluator();
    let grid = ConfigurationSpace::enumeration_grid();
    let single = ParallelEnumeration::new().run(&grid, &evaluator);
    assert_eq!(single.evaluations, 19_926);

    let path = temp_store("acceptance");
    let _ = std::fs::remove_file(&path);
    let context = campaign_context(MethodKind::Em, &Genome::Human.workload());

    // cold campaign: 4 shards, every configuration evaluated exactly once
    {
        let store: JsonlStore<SystemConfiguration> =
            JsonlStore::open_with_context(&path, &context).unwrap();
        let counting = CountingObjective::new(&evaluator);
        let cold = ShardedCampaign::new(4)
            .run(&grid, &counting, &store)
            .unwrap();
        assert_eq!(counting.evaluations(), 19_926);
        assert_eq!(
            cold.stats,
            CacheStats {
                hits: 0,
                misses: 19_926
            }
        );
        assert_eq!(cold.shards.len(), 4);
        assert_eq!(cold.best_config, single.best_config);
        assert_eq!(cold.best_energy.to_bits(), single.best_energy.to_bits());
    }

    // a campaign over a different objective cannot hijack this store
    assert!(JsonlStore::<SystemConfiguration>::open_with_context(
        &path,
        &campaign_context(MethodKind::Em, &Genome::Cat.workload())
    )
    .is_err());

    // warm campaign from a *fresh* store instance (reloaded from disk): zero new
    // evaluations, identical result
    {
        let store: JsonlStore<SystemConfiguration> =
            JsonlStore::open_with_context(&path, &context).unwrap();
        assert_eq!(store.len(), 19_926);
        assert_eq!(store.skipped_lines(), 0);
        let counting = CountingObjective::new(&evaluator);
        let warm = ShardedCampaign::new(4)
            .run(&grid, &counting, &store)
            .unwrap();
        assert_eq!(
            counting.evaluations(),
            0,
            "a warm on-disk store must answer the whole campaign"
        );
        assert_eq!(
            warm.stats,
            CacheStats {
                hits: 19_926,
                misses: 0
            }
        );
        assert_eq!(warm.best_config, single.best_config);
        assert_eq!(warm.best_energy.to_bits(), single.best_energy.to_bits());
        // the audit trail remembers both campaigns
        assert_eq!(
            store.recorded_stats(),
            CacheStats {
                hits: 19_926,
                misses: 19_926
            }
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn sharding_is_invisible_for_every_shard_count() {
    let evaluator = evaluator();
    let grid = ConfigurationSpace::tiny();
    let single = ParallelEnumeration::new().run(&grid, &evaluator);
    for shards in [1usize, 2, 3, 5, 8, 64] {
        let store = MemoryStore::new();
        let outcome = ShardedCampaign::new(shards)
            .run(&grid, &evaluator, &store)
            .unwrap();
        assert_eq!(outcome.best_config, single.best_config, "{shards} shards");
        assert_eq!(outcome.best_energy.to_bits(), single.best_energy.to_bits());
        assert_eq!(outcome.evaluations, single.evaluations);
    }
}

#[test]
fn sharded_em_through_the_method_layer_matches_the_method_runner() {
    let platform = HeterogeneousPlatform::emil();
    let workload = Genome::Cat.workload();
    let grid = ConfigurationSpace::tiny();
    let runner_outcome = MethodRunner::new(&platform, &workload, None, 1)
        .with_grid(grid.clone())
        .run(MethodKind::Em, 0)
        .unwrap();

    let store = MemoryStore::new();
    let sharded =
        run_enumeration_sharded(&platform, &workload, None, MethodKind::Em, &grid, 4, &store)
            .unwrap();
    assert_eq!(sharded.best_config, runner_outcome.best_config);
    assert_eq!(
        sharded.search_energy.to_bits(),
        runner_outcome.search_energy.to_bits()
    );
    assert_eq!(
        sharded.measured_energy.to_bits(),
        runner_outcome.measured_energy.to_bits()
    );

    // the store now answers a repeated sharded EM for free, even at another node count
    let resumed =
        run_enumeration_sharded(&platform, &workload, None, MethodKind::Em, &grid, 9, &store)
            .unwrap();
    assert_eq!(resumed.cache.misses, 0);
    assert_eq!(resumed.best_config, runner_outcome.best_config);
}
