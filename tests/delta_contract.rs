//! Contract tests for the delta/observability entry points across the facade:
//!
//! * `ConfigurationSpace::neighbor_move` / `ConfigurationSpace::crossover_move` are
//!   bit-identical to `neighbor` / `crossover` (same RNG draws) and their
//!   [`Touched`] footprints match the actual per-component diff;
//! * `SimulatedAnnealing::run_observed` is bit-identical to
//!   `SimulatedAnnealing::run` — the recorder only observes;
//! * `ShardedCampaign::run_observed` is bit-identical to `ShardedCampaign::run`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workdist::autotune::{ConfigurationSpace, SystemConfiguration};
use workdist::dist::{MemoryStore, ShardedCampaign};
use workdist::obs::Registry;
use workdist::opt::{Objective, SearchSpace, SimulatedAnnealing, Touched};

/// Cheap deterministic stand-in for the predicted work-distribution energy: wavy in
/// every configuration parameter so a wrong move or footprint almost surely shows.
struct Synthetic;

impl Objective<SystemConfiguration> for Synthetic {
    fn evaluate(&self, config: &SystemConfiguration) -> f64 {
        let mut energy =
            (config.host_threads as f64 * 0.37).sin().abs() + config.host_permille() as f64 * 1e-3;
        for (index, device) in config.devices().iter().enumerate() {
            energy += (device.threads as f64 * (0.11 + index as f64 * 0.05))
                .cos()
                .abs()
                + device.permille as f64 * 2e-3;
        }
        energy
    }
}

/// The footprint convention of `ConfigurationSpace`: component 0 is the host,
/// component `i + 1` is accelerator `i`.
fn diff_components(a: &SystemConfiguration, b: &SystemConfiguration) -> Vec<usize> {
    let mut touched = Vec::new();
    if a.host_threads != b.host_threads
        || a.host_affinity != b.host_affinity
        || a.host_permille() != b.host_permille()
    {
        touched.push(0);
    }
    for (index, (da, db)) in a.devices().iter().zip(b.devices()).enumerate() {
        if da != db {
            touched.push(index + 1);
        }
    }
    touched
}

#[test]
fn configuration_space_neighbor_move_matches_neighbor_with_exact_footprint() {
    for space in [ConfigurationSpace::tiny(), ConfigurationSpace::tiny_multi()] {
        for seed in 0..16u64 {
            let mut plain_rng = StdRng::seed_from_u64(seed);
            let mut move_rng = StdRng::seed_from_u64(seed);
            let mut current = space.random(&mut StdRng::seed_from_u64(seed ^ 0x5EED));
            for _ in 0..50 {
                let plain = space.neighbor(&current, &mut plain_rng);
                let (moved, touched) = space.neighbor_move(&current, &mut move_rng);
                assert_eq!(plain, moved, "seed {seed}");
                assert_eq!(
                    touched,
                    Touched::Components(diff_components(&moved, &current)),
                    "seed {seed}"
                );
                current = moved;
            }
            // both streams must sit at the same position afterwards
            assert_eq!(plain_rng.gen::<u64>(), move_rng.gen::<u64>());
        }
    }
}

#[test]
fn configuration_space_crossover_move_matches_crossover_with_exact_footprint() {
    for space in [ConfigurationSpace::tiny(), ConfigurationSpace::tiny_multi()] {
        for seed in 0..16u64 {
            let mut setup = StdRng::seed_from_u64(seed.wrapping_mul(31));
            let parent_a = space.random(&mut setup);
            let parent_b = space.random(&mut setup);
            let mut plain_rng = StdRng::seed_from_u64(seed);
            let mut move_rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                let plain = space.crossover(&parent_a, &parent_b, &mut plain_rng);
                let (child, touched) = space.crossover_move(&parent_a, &parent_b, &mut move_rng);
                assert_eq!(plain, child, "seed {seed}");
                assert_eq!(
                    touched,
                    Touched::Components(diff_components(&child, &parent_a)),
                    "seed {seed}"
                );
            }
            assert_eq!(plain_rng.gen::<u64>(), move_rng.gen::<u64>());
        }
    }
}

#[test]
fn simulated_annealing_run_observed_is_bit_identical_to_run() {
    let space = ConfigurationSpace::tiny();
    let objective = Synthetic;
    for seed in [3u64, 17, 99] {
        let annealer = SimulatedAnnealing::with_budget_and_range(400, 100.0, 1.0, seed);
        let plain = annealer.run(&space, &objective);
        let registry = Registry::new();
        let observed = annealer.run_observed(&space, &objective, &registry, "sa-contract");

        assert_eq!(observed.best_config, plain.best_config, "seed {seed}");
        assert_eq!(
            observed.best_energy.to_bits(),
            plain.best_energy.to_bits(),
            "seed {seed}"
        );
        assert_eq!(observed.evaluations, plain.evaluations, "seed {seed}");
        assert_eq!(observed.trace.len(), plain.trace.len(), "seed {seed}");
        // the observed run really published its iterations
        assert!(!registry.snapshot().iterations.is_empty(), "seed {seed}");
    }
}

#[test]
fn sharded_campaign_run_observed_is_bit_identical_to_run() {
    let space = ConfigurationSpace::tiny_multi();
    let objective = Synthetic;
    let campaign = ShardedCampaign::new(3);

    let plain_store: MemoryStore<SystemConfiguration> = MemoryStore::new();
    let plain = campaign.run(&space, &objective, &plain_store).unwrap();

    let observed_store: MemoryStore<SystemConfiguration> = MemoryStore::new();
    let registry = Registry::new();
    let observed = campaign
        .run_observed(
            &space,
            &objective,
            &observed_store,
            &registry,
            "campaign-contract",
        )
        .unwrap();

    assert_eq!(observed.best_config, plain.best_config);
    assert_eq!(observed.best_energy.to_bits(), plain.best_energy.to_bits());
    assert_eq!(observed.evaluations, plain.evaluations);
    assert_eq!(observed.shards.len(), plain.shards.len());
    assert!(!registry.snapshot().events.is_empty());
}
