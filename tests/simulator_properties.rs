//! Property-based integration tests: invariants that must hold across the
//! configuration space, the platform simulator and the evaluators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workdist::autotune::{ConfigurationSpace, MeasurementEvaluator, SystemConfiguration};
use workdist::opt::{Objective, SearchSpace};
use workdist::platform::{Affinity, HeterogeneousPlatform};

fn host_affinities() -> impl Strategy<Value = Affinity> {
    prop_oneof![
        Just(Affinity::None),
        Just(Affinity::Scatter),
        Just(Affinity::Compact),
    ]
}

fn device_affinities() -> impl Strategy<Value = Affinity> {
    prop_oneof![
        Just(Affinity::Balanced),
        Just(Affinity::Scatter),
        Just(Affinity::Compact),
    ]
}

fn arb_config() -> impl Strategy<Value = SystemConfiguration> {
    (
        proptest::sample::select(vec![2u32, 4, 6, 12, 24, 36, 48]),
        host_affinities(),
        proptest::sample::select(vec![2u32, 4, 8, 16, 30, 60, 120, 180, 240]),
        device_affinities(),
        0u32..=100,
    )
        .prop_map(|(ht, ha, dt, da, pct)| {
            SystemConfiguration::with_host_percent(ht, ha, dt, da, pct)
        })
}

fn evaluator_for(bytes: u64) -> MeasurementEvaluator {
    MeasurementEvaluator::new(
        HeterogeneousPlatform::emil(),
        workdist::platform::WorkloadProfile::dna_scan("w", bytes),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every configuration of the paper's space evaluates to a finite, positive energy,
    /// and the energy equals max(T_host, T_device).
    #[test]
    fn every_configuration_evaluates(config in arb_config(), gb in 1u64..4) {
        let evaluator = evaluator_for(gb * 1_000_000_000);
        let (host, device) = evaluator.evaluate_times(&config);
        prop_assert!(host.is_finite() && host >= 0.0);
        prop_assert!(device.is_finite() && device >= 0.0);
        let energy = evaluator.energy(&config);
        prop_assert!((energy - host.max(device)).abs() < 1e-12);
        prop_assert!(energy > 0.0);
        if config.uses_host() { prop_assert!(host > 0.0); } else { prop_assert!(host == 0.0); }
        if config.uses_device() { prop_assert!(device > 0.0); } else { prop_assert!(device == 0.0); }
    }

    /// The evaluator is deterministic: evaluating the same configuration twice yields
    /// bit-identical energies (the foundation of reproducible studies), and the batched
    /// path agrees bit-exactly with single evaluations.
    #[test]
    fn evaluation_is_deterministic_and_batch_consistent(config in arb_config()) {
        let evaluator = MeasurementEvaluator::new(
            HeterogeneousPlatform::emil(),
            workdist::dna::Genome::Mouse.workload(),
        );
        prop_assert_eq!(evaluator.energy(&config), evaluator.energy(&config));
        let batch = vec![config.clone(), config.clone(), SystemConfiguration::host_only_baseline()];
        let energies = evaluator.evaluate_batch(&batch);
        prop_assert_eq!(energies[0], evaluator.energy(&config));
        prop_assert_eq!(energies[1], energies[0]);
        prop_assert_eq!(energies[2], evaluator.energy(&SystemConfiguration::host_only_baseline()));
    }

    /// Host-only energy is monotone non-increasing in the host thread count (more
    /// threads never hurt in the calibrated model), for every affinity.
    #[test]
    fn host_only_energy_monotone_in_threads(affinity in host_affinities(), gb in 1u64..4) {
        let evaluator = MeasurementEvaluator::new(
            HeterogeneousPlatform::emil().without_noise(),
            workdist::platform::WorkloadProfile::dna_scan("w", gb * 1_000_000_000),
        );
        let mut previous = f64::INFINITY;
        for threads in [2u32, 4, 6, 12, 24, 36, 48] {
            let config = SystemConfiguration::with_host_percent(threads, affinity, 240, Affinity::Balanced, 100);
            let energy = evaluator.energy(&config);
            prop_assert!(energy <= previous * 1.001,
                "host-only energy increased from {} to {} at {} threads", previous, energy, threads);
            previous = energy;
        }
    }

    /// Random samples and neighbour moves of the paper's search space always produce
    /// configurations that the platform accepts (no validation errors).
    #[test]
    fn space_samples_are_always_valid(seed in 0u64..1000, steps in 1usize..50) {
        let space = ConfigurationSpace::paper();
        let evaluator = MeasurementEvaluator::new(
            HeterogeneousPlatform::emil(),
            workdist::dna::Genome::Human.workload(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut config = space.random(&mut rng);
        for _ in 0..steps {
            // energy() panics if the platform rejects the configuration
            let energy = evaluator.energy(&config);
            prop_assert!(energy.is_finite() && energy > 0.0);
            config = space.neighbor(&config, &mut rng);
        }
    }

    /// The best achievable split is never worse than either single-device execution
    /// (running concurrently cannot lose to running alone), once fixed offload overhead
    /// is accounted for by the optimizer being free to choose 100 % host.
    #[test]
    fn best_split_is_at_least_as_good_as_host_only(gb in 1u64..4) {
        let evaluator = MeasurementEvaluator::new(
            HeterogeneousPlatform::emil().without_noise(),
            workdist::platform::WorkloadProfile::dna_scan("w", gb * 1_000_000_000),
        );
        let host_only = evaluator.energy(&SystemConfiguration::host_only_baseline());
        let sweep: Vec<SystemConfiguration> = (0..=100u32)
            .map(|pct| SystemConfiguration::with_host_percent(48, Affinity::Scatter, 240, Affinity::Balanced, pct))
            .collect();
        let best = evaluator
            .evaluate_batch(&sweep)
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        prop_assert!(best <= host_only * 1.0001);
    }
}
