//! Integration tests of the generic optimizers against the work-distribution objective.

use workdist::autotune::{ConfigurationSpace, MeasurementEvaluator, MethodKind};
use workdist::dna::Genome;
use workdist::opt::{
    Enumeration, GeneticAlgorithm, HillClimbing, RandomSearch, SimulatedAnnealing, TabuSearch,
};
use workdist::platform::HeterogeneousPlatform;

/// The evaluator *is* the objective: `MeasurementEvaluator` implements
/// `wd_opt::Objective<SystemConfiguration>` directly.
fn objective_setup() -> MeasurementEvaluator {
    MeasurementEvaluator::new(HeterogeneousPlatform::emil(), Genome::Human.workload())
}

#[test]
fn every_heuristic_beats_random_sampling_of_equal_budget() {
    let objective = objective_setup();
    let space = ConfigurationSpace::paper();
    let budget = 600;

    let random = RandomSearch::new(budget, 17).run(&space, &objective);
    let annealing =
        SimulatedAnnealing::with_budget_and_range(budget, 2.0, 0.02, 17).run(&space, &objective);
    let hill = HillClimbing::with_budget(budget, 17).run(&space, &objective);
    let tabu = TabuSearch::with_budget(budget / 8, 17).run(&space, &objective);
    let genetic = GeneticAlgorithm::with_budget(budget, 17).run(&space, &objective);

    // all structured heuristics should do at least as well as random sampling (small
    // tolerance for the stochastic nature of the comparison)
    for (name, outcome) in [
        ("simulated annealing", &annealing),
        ("hill climbing", &hill),
        ("tabu search", &tabu),
        ("genetic algorithm", &genetic),
    ] {
        assert!(
            outcome.best_energy <= random.best_energy * 1.10,
            "{name} ({}) should not be clearly worse than random search ({})",
            outcome.best_energy,
            random.best_energy
        );
    }
}

#[test]
fn enumeration_of_the_small_grid_is_the_true_optimum() {
    let objective = objective_setup();
    let grid = ConfigurationSpace::tiny();

    let sequential = Enumeration::sequential().run(&grid, &objective);
    let parallel = Enumeration::parallel().run(&grid, &objective);
    assert_eq!(sequential.best_energy, parallel.best_energy);
    assert_eq!(sequential.evaluations as u128, grid.total_configurations());

    // the batched path agrees bit-exactly as well
    let batched = workdist::opt::ParallelEnumeration::new().run(&grid, &objective);
    assert_eq!(batched.best_energy, sequential.best_energy);
    assert_eq!(batched.best_config, sequential.best_config);

    // no simulated annealing run on the same grid may beat the enumerated optimum
    for seed in 0..5u64 {
        let sa =
            SimulatedAnnealing::with_budget_and_range(400, 2.0, 0.02, seed).run(&grid, &objective);
        assert!(sa.best_energy >= sequential.best_energy - 1e-12);
    }
}

#[test]
fn method_kinds_report_the_evaluation_economics_of_the_paper() {
    // EM needs the full grid; SA-based methods work with a user-chosen budget.
    let kinds = MethodKind::ALL;
    assert!(kinds.iter().filter(|k| k.uses_enumeration()).count() == 2);
    assert!(kinds.iter().filter(|k| k.uses_prediction()).count() == 2);
    // Table II effort ordering: enumeration-based methods are "high" effort
    for kind in kinds {
        let props = kind.properties();
        if kind.uses_enumeration() {
            assert_eq!(props.effort, "high");
        } else {
            assert_eq!(props.effort, "medium");
        }
        assert_eq!(props.prediction, kind.uses_prediction());
    }
}

#[test]
fn annealing_budget_controls_the_number_of_experiments() {
    let objective = objective_setup();
    let space = ConfigurationSpace::paper();
    for budget in [250usize, 1000, 2000] {
        let outcome =
            SimulatedAnnealing::with_iteration_budget(budget, 1000.0, 3).run(&space, &objective);
        // +1 for the initial configuration, small slack for the budget-to-cooling conversion
        assert!(
            outcome.evaluations >= budget / 2 && outcome.evaluations <= budget + 32,
            "budget {budget} produced {} evaluations",
            outcome.evaluations
        );
    }
}
