//! Acceptance tests for the incremental annealing fast path (lazy per-device tables
//! + O(1) delta energy updates):
//!
//! * property: the lazy [`LazyTabulatedPredictionEvaluator`] and the eager
//!   [`TabulatedPredictionEvaluator`] are **bit-identical** to the direct
//!   [`PredictionEvaluator`] over the whole enumeration of random 1/2/3-accelerator
//!   spaces, and after a full sweep the lazy tables paid exactly the eager table
//!   cost — no more, no less;
//! * property: incremental SA / tabu / hill-climbing trajectories (`run_delta` over
//!   the lazy tables) are **bit-identical** to full re-evaluation of the direct
//!   models (`run`): same RNG seed → same accepted moves, same per-iteration trace,
//!   same final energy — while walking the boosted-tree models far less often;
//! * the per-device split granularity composes with the fast path: a heterogeneous
//!   (per-device step) space anneals through the delta drivers unchanged.

use proptest::prelude::*;
use workdist::autotune::{ConfigurationSpace, DeviceAxis, PredictionEvaluator};
use workdist::ml::{Dataset, MlError, Regressor};
use workdist::opt::{HillClimbing, SimulatedAnnealing, TabuSearch};
use workdist::platform::{Affinity, WorkloadProfile};

/// A deterministic, nonlinear dummy regressor counting its invocations: cheap enough
/// for property tests, wavy enough that a wrong table lookup or a stale delta state
/// almost surely produces a different energy.  Each evaluator carries its **own**
/// counter (libtest runs the tests of this binary in parallel, so a shared static
/// would interleave counts across tests and flake).
struct Wavy {
    salt: f64,
    calls: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl Regressor for Wavy {
    fn fit(&mut self, _data: &Dataset) -> Result<(), MlError> {
        Ok(())
    }
    fn predict_one(&self, features: &[f64]) -> f64 {
        self.calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let threads = features[0];
        let gigabytes = features[4];
        (threads * self.salt).sin().abs() * 0.5 + gigabytes * (1.0 + features[1] * 0.125)
            - features[2] * 0.0625
    }
    fn is_fitted(&self) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "wavy"
    }
}

/// Build a random configuration space with `accelerators` accelerators, small enough
/// to enumerate exhaustively inside a property test.
fn space_from(
    accelerators: usize,
    host_threads: Vec<u32>,
    device_threads: Vec<u32>,
    step_index: usize,
) -> ConfigurationSpace {
    let steps = [
        [100u32, 200, 250], // 1 accelerator
        [200, 250, 500],    // 2 accelerators
        [250, 500, 500],    // 3 accelerators
    ];
    let step = steps[accelerators - 1][step_index % 3];
    ConfigurationSpace::multi_accelerator(
        host_threads,
        vec![Affinity::Scatter, Affinity::Compact],
        (0..accelerators)
            .map(|device| {
                DeviceAxis::new(
                    device_threads.iter().map(|&t| t + device as u32).collect(),
                    vec![Affinity::Balanced],
                )
            })
            .collect(),
        step,
    )
}

/// Build an evaluator over counting `Wavy` models, returning its private invocation
/// counter alongside.
fn wavy_evaluator(
    accelerators: usize,
    bytes: u64,
) -> (
    PredictionEvaluator,
    std::sync::Arc<std::sync::atomic::AtomicUsize>,
) {
    let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let evaluator = PredictionEvaluator::new(
        Box::new(Wavy {
            salt: 0.37,
            calls: calls.clone(),
        }),
        (0..accelerators)
            .map(|device| {
                Box::new(Wavy {
                    salt: 0.11 + device as f64 * 0.07,
                    calls: calls.clone(),
                }) as Box<dyn Regressor + Send + Sync>
            })
            .collect(),
        WorkloadProfile::dna_scan("prop", bytes),
    )
    .with_device_overhead(0.03);
    (evaluator, calls)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Lazy and eager tabulation are bit-identical to the direct prediction path over
    /// whole enumerations of random 1/2/3-accelerator spaces, and a full lazy sweep
    /// walks the models exactly as often as building the eager tables.
    #[test]
    fn lazy_and_eager_tabulation_are_bit_identical(
        accelerators in 1usize..=3,
        host_threads in proptest::sample::select(vec![vec![2u32, 48], vec![12, 24, 48], vec![4]]),
        device_threads in proptest::sample::select(vec![vec![30u32, 240], vec![60], vec![8, 64, 448]]),
        step_index in 0usize..3,
        bytes in 500_000_000u64..4_000_000_000,
    ) {
        use workdist::opt::SearchSpace as _;

        let space = space_from(accelerators, host_threads, device_threads, step_index);
        let (evaluator, _calls) = wavy_evaluator(accelerators, bytes);
        let eager = evaluator.tabulated(&space);
        let lazy = evaluator.lazy_tabulated();

        for config in space.enumerate().unwrap() {
            let direct = evaluator.energy(&config);
            prop_assert_eq!(eager.energy(&config).to_bits(), direct.to_bits(), "eager {}", config);
            prop_assert_eq!(lazy.energy(&config).to_bits(), direct.to_bits(), "lazy {}", config);
        }
        prop_assert_eq!(eager.fallback_queries(), 0);
        // one full sweep touches every distinct (threads, affinity, share) triple of
        // the space — exactly the entries the eager construction precomputed
        prop_assert_eq!(lazy.model_queries(), eager.table_model_queries());
        prop_assert_eq!(lazy.table_len(), eager.table_len());
    }

    /// Incremental SA / tabu / hill-climbing over the lazy tables replay the direct
    /// full-re-evaluation trajectories bit for bit, with far fewer model walks.
    #[test]
    fn delta_walks_are_bit_identical_to_direct_reevaluation(
        accelerators in 1usize..=3,
        host_threads in proptest::sample::select(vec![vec![2u32, 48], vec![12, 24, 48], vec![4]]),
        device_threads in proptest::sample::select(vec![vec![30u32, 240], vec![60], vec![8, 64, 448]]),
        step_index in 0usize..3,
        bytes in 500_000_000u64..4_000_000_000,
        seed in 0u64..1000,
        budget in 60usize..200,
    ) {
        let space = space_from(accelerators, host_threads, device_threads, step_index);
        let (evaluator, calls) = wavy_evaluator(accelerators, bytes);
        let lazy = evaluator.lazy_tabulated();
        let model_calls = || calls.load(std::sync::atomic::Ordering::Relaxed);

        // simulated annealing
        let sa = SimulatedAnnealing::with_budget_and_range(budget, 2.0, 0.02, seed);
        let before = model_calls();
        let full = sa.run(&space, &evaluator);
        let full_walks = model_calls() - before;
        let before = model_calls();
        let fast = sa.run_delta(&space, &lazy);
        let fast_walks = model_calls() - before;
        prop_assert_eq!(&full.best_config, &fast.best_config);
        prop_assert_eq!(full.best_energy.to_bits(), fast.best_energy.to_bits());
        prop_assert_eq!(full.evaluations, fast.evaluations);
        prop_assert_eq!(full.trace.records(), fast.trace.records());
        // the direct path walks every device's model on every evaluation, except the
        // zero-share components it short-circuits
        prop_assert!(full_walks <= (accelerators + 1) * full.evaluations);
        prop_assert!(full_walks > full.evaluations / 2);
        prop_assert!(fast_walks < full_walks,
            "lazy SA walked the models {fast_walks} times, direct {full_walks}");

        // tabu search (fresh tables so each driver's count stands alone)
        let lazy = evaluator.lazy_tabulated();
        let tabu = TabuSearch::with_budget(budget / 8 + 1, seed);
        let full = tabu.run(&space, &evaluator);
        let fast = tabu.run_delta(&space, &lazy);
        prop_assert_eq!(&full.best_config, &fast.best_config);
        prop_assert_eq!(full.best_energy.to_bits(), fast.best_energy.to_bits());
        prop_assert_eq!(full.evaluations, fast.evaluations);
        prop_assert_eq!(full.trace.records(), fast.trace.records());

        // hill climbing
        let lazy = evaluator.lazy_tabulated();
        let hill = HillClimbing::with_budget(budget, seed);
        let full = hill.run(&space, &evaluator);
        let fast = hill.run_delta(&space, &lazy);
        prop_assert_eq!(&full.best_config, &fast.best_config);
        prop_assert_eq!(full.best_energy.to_bits(), fast.best_energy.to_bits());
        prop_assert_eq!(full.evaluations, fast.evaluations);
        prop_assert_eq!(full.trace.records(), fast.trace.records());
    }
}

/// The per-device split granularity composes with the incremental fast path: a
/// heterogeneous-step space (coarse slow device) anneals through `run_delta`
/// bit-identically to direct full re-evaluation, inside a simplex a fraction of the
/// uniform one's size.
#[test]
fn heterogeneous_step_space_anneals_through_the_fast_path() {
    let axes = || {
        vec![
            DeviceAxis::new(vec![60, 240], vec![Affinity::Balanced]),
            DeviceAxis::new(vec![112, 448], vec![Affinity::Balanced]),
        ]
    };
    let heterogeneous = ConfigurationSpace::multi_accelerator_heterogeneous(
        vec![12, 48],
        vec![Affinity::Scatter],
        axes(),
        &[100, 100, 500], // fine host + fast device, coarse slow device
    );
    let uniform =
        ConfigurationSpace::multi_accelerator(vec![12, 48], vec![Affinity::Scatter], axes(), 100);
    assert!(
        heterogeneous.splits.len() * 3 < uniform.splits.len(),
        "coarse slow-device steps must shrink the simplex ({} vs {})",
        heterogeneous.splits.len(),
        uniform.splits.len()
    );

    let (evaluator, _calls) = wavy_evaluator(2, 3_170_000_000);
    let lazy = evaluator.lazy_tabulated();
    let sa = SimulatedAnnealing::with_budget_and_range(300, 2.0, 0.02, 23);
    let full = sa.run(&heterogeneous, &evaluator);
    let fast = sa.run_delta(&heterogeneous, &lazy);
    assert_eq!(full.best_config, fast.best_config);
    assert_eq!(full.best_energy.to_bits(), fast.best_energy.to_bits());
    assert_eq!(full.trace.records(), fast.trace.records());
    // every split the walk visited lies on the heterogeneous grid
    assert!(heterogeneous.splits.contains(&fast.best_config.split()));
}
