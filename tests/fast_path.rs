//! Acceptance tests for the zero-materialization enumeration + factorized prediction
//! fast path:
//!
//! * property: the factorized [`TabulatedPredictionEvaluator`] is **bit-identical** to
//!   the direct [`PredictionEvaluator`] over randomly sampled 1/2/3-accelerator
//!   configuration spaces;
//! * property: lazy indexed enumeration (`space_len` / `config_at`) visits exactly the
//!   same configurations in the same global order as `enumerate()`;
//! * sharded campaigns over a 3-accelerator space run without ever materialising the
//!   full configuration `Vec` — asserted through the lazy space's instrumentation and
//!   a max-batch-recording objective (peak per-worker materialisation is bounded by
//!   the campaign's chunk size);
//! * EML through the `MethodRunner` (which now takes the fast path internally) is
//!   bit-identical to enumerating the direct prediction evaluator by hand.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use workdist::autotune::{
    ConfigurationSpace, DeviceAxis, MethodKind, MethodRunner, PredictionEvaluator, TrainingCampaign,
};
use workdist::dist::{MemoryStore, ShardedCampaign};
use workdist::ml::{BoostingParams, Dataset, MlError, Regressor};
use workdist::opt::{
    CachedObjective, InstrumentedSpace, MaterializedOnly, Objective, ParallelEnumeration,
    SearchSpace,
};
use workdist::platform::{Affinity, HeterogeneousPlatform, WorkloadProfile};

/// A deterministic, nonlinear dummy regressor: cheap enough for property tests, wavy
/// enough that a wrong table lookup almost surely produces a different energy.
struct Wavy {
    salt: f64,
}

impl Regressor for Wavy {
    fn fit(&mut self, _data: &Dataset) -> Result<(), MlError> {
        Ok(())
    }
    fn predict_one(&self, features: &[f64]) -> f64 {
        let threads = features[0];
        let gigabytes = features[4];
        (threads * self.salt).sin().abs() * 0.5 + gigabytes * (1.0 + features[1] * 0.125)
            - features[2] * 0.0625
    }
    fn is_fitted(&self) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "wavy"
    }
}

/// Build a random configuration space with `accelerators` accelerators, small enough
/// to enumerate exhaustively inside a property test.
fn space_from(
    accelerators: usize,
    host_threads: Vec<u32>,
    device_threads: Vec<u32>,
    step_index: usize,
) -> ConfigurationSpace {
    let steps = [
        [100u32, 200, 250], // 1 accelerator: 11 / 6 / 5 splits
        [200, 250, 500],    // 2 accelerators: 21 / 15 / 6 splits
        [250, 500, 500],    // 3 accelerators: 35 / 10 / 10 splits
    ];
    let step = steps[accelerators - 1][step_index % 3];
    ConfigurationSpace::multi_accelerator(
        host_threads,
        vec![Affinity::Scatter, Affinity::Compact],
        (0..accelerators)
            .map(|device| {
                DeviceAxis::new(
                    device_threads.iter().map(|&t| t + device as u32).collect(),
                    vec![Affinity::Balanced],
                )
            })
            .collect(),
        step,
    )
}

fn wavy_evaluator(accelerators: usize, bytes: u64) -> PredictionEvaluator {
    PredictionEvaluator::new(
        Box::new(Wavy { salt: 0.37 }),
        (0..accelerators)
            .map(|device| {
                Box::new(Wavy {
                    salt: 0.11 + device as f64 * 0.07,
                }) as Box<dyn Regressor + Send + Sync>
            })
            .collect(),
        WorkloadProfile::dna_scan("prop", bytes),
    )
    .with_device_overhead(0.03)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tabulated energies are bit-identical to the direct prediction path over the
    /// whole enumeration of random 1/2/3-accelerator spaces, and enumerating through
    /// the tables never falls back to the models.
    #[test]
    fn tabulated_prediction_is_bit_identical(
        accelerators in 1usize..=3,
        host_threads in proptest::sample::select(vec![vec![2u32, 48], vec![12, 24, 48], vec![4]]),
        device_threads in proptest::sample::select(vec![vec![30u32, 240], vec![60], vec![8, 64, 448]]),
        step_index in 0usize..3,
        bytes in 500_000_000u64..4_000_000_000,
    ) {
        let space = space_from(accelerators, host_threads, device_threads, step_index);
        let evaluator = wavy_evaluator(accelerators, bytes);
        let tabulated = evaluator.tabulated(&space);
        for config in space.enumerate().unwrap() {
            let direct = evaluator.energy(&config);
            let fast = tabulated.energy(&config);
            prop_assert_eq!(direct.to_bits(), fast.to_bits(), "config {}", config);
        }
        prop_assert_eq!(tabulated.fallback_queries(), 0);
    }

    /// Lazy indexed enumeration serves exactly the `enumerate()` sequence: same
    /// configurations, same global order, and `config_at` is `None` past the end.
    #[test]
    fn lazy_enumeration_matches_the_materialized_order(
        accelerators in 1usize..=3,
        host_threads in proptest::sample::select(vec![vec![2u32, 48], vec![12, 24, 48], vec![4]]),
        device_threads in proptest::sample::select(vec![vec![30u32, 240], vec![60], vec![8, 64, 448]]),
        step_index in 0usize..3,
    ) {
        let space = space_from(accelerators, host_threads, device_threads, step_index);
        let all = space.enumerate().unwrap();
        prop_assert_eq!(space.space_len(), Some(all.len()));
        for (index, config) in all.iter().enumerate() {
            let at = space.config_at(index);
            prop_assert_eq!(at.as_ref(), Some(config), "index {}", index);
        }
        prop_assert_eq!(space.config_at(all.len()), None);

        // and the streaming driver reaches the same winner as the materialising one
        let objective = |config: &workdist::autotune::SystemConfiguration| {
            config.split().iter().enumerate()
                .map(|(i, &s)| f64::from(s) * (0.8 + i as f64 * 0.1)).sum::<f64>()
                + f64::from(config.host_threads)
        };
        let lazy = ParallelEnumeration::with_batch_size(37).run_indexed(&space, &objective);
        let materialized = ParallelEnumeration::with_batch_size(37)
            .run_indexed(&MaterializedOnly::new(&space), &objective);
        prop_assert_eq!(lazy.best_index, materialized.best_index);
        prop_assert_eq!(&lazy.outcome.best_config, &materialized.outcome.best_config);
        prop_assert_eq!(
            lazy.outcome.best_energy.to_bits(),
            materialized.outcome.best_energy.to_bits()
        );
    }
}

/// An objective recording the largest batch it was ever asked to score: with the
/// streaming drivers this bounds how many configurations a worker materialises at
/// once.
struct MaxBatch<'a, O: ?Sized> {
    inner: &'a O,
    max: AtomicUsize,
}

impl<C, O: Objective<C> + ?Sized> Objective<C> for MaxBatch<'_, O> {
    fn evaluate(&self, config: &C) -> f64 {
        self.max.fetch_max(1, Ordering::Relaxed);
        self.inner.evaluate(config)
    }
    fn evaluate_batch(&self, configs: &[C]) -> Vec<f64> {
        self.max.fetch_max(configs.len(), Ordering::Relaxed);
        self.inner.evaluate_batch(configs)
    }
}

#[test]
fn sharded_three_accelerator_campaign_never_materializes_the_grid() {
    // host + 3 accelerators, 25 % split steps: C(7,3) = 35 splits × 2 × 2×2×2 = 560
    let space = ConfigurationSpace::multi_accelerator(
        vec![24, 48],
        vec![Affinity::Scatter],
        vec![
            DeviceAxis::new(vec![60, 240], vec![Affinity::Balanced]),
            DeviceAxis::new(vec![112, 448], vec![Affinity::Balanced]),
            DeviceAxis::new(vec![64, 128], vec![Affinity::Balanced]),
        ],
        250,
    );
    let total = space.space_len().unwrap();
    let evaluator = wavy_evaluator(3, 3_170_000_000);
    let tabulated = evaluator.tabulated(&space);

    let instrumented = InstrumentedSpace::new(&space);
    let batch_size = 64;
    let objective = MaxBatch {
        inner: &tabulated,
        max: AtomicUsize::new(0),
    };
    let store = MemoryStore::new();
    let shards = 4;
    let outcome = ShardedCampaign::new(shards)
        .with_batch_size(batch_size)
        .run(&instrumented, &objective, &store)
        .unwrap();

    // the full configuration Vec was never built: the space only ever served single
    // configurations by index, in chunk-sized batches
    assert_eq!(
        instrumented.enumerate_calls(),
        0,
        "the lazy campaign must not materialise the space"
    );
    assert_eq!(
        instrumented.config_at_calls(),
        total + shards + 1,
        "every config streams once, plus per-shard and global winner re-materialisation"
    );
    assert!(
        objective.max.load(Ordering::Relaxed) <= batch_size,
        "peak per-worker materialisation must be bounded by the chunk size"
    );
    assert_eq!(outcome.evaluations, total);

    // bit-identical to the forced-materialization fallback on the same space
    let reference = ShardedCampaign::new(shards)
        .with_batch_size(batch_size)
        .run(
            &MaterializedOnly::new(&space),
            &tabulated,
            &MemoryStore::new(),
        )
        .unwrap();
    assert_eq!(outcome.best_config, reference.best_config);
    assert_eq!(outcome.best_index, reference.best_index);
    assert_eq!(
        outcome.best_energy.to_bits(),
        reference.best_energy.to_bits()
    );
}

#[test]
fn eml_through_the_method_runner_takes_the_fast_path_bit_identically() {
    let platform = HeterogeneousPlatform::emil_with_gpu();
    let models = TrainingCampaign::reduced_for(&platform).run(&platform, BoostingParams::fast());
    let workload = WorkloadProfile::dna_scan("human", 3_170_000_000);
    let grid = ConfigurationSpace::tiny_multi();

    // hand-rolled direct EML: enumerate the cached prediction evaluator, no tables
    let prediction = models.prediction_evaluator(workload.clone());
    let cached = CachedObjective::new(&prediction);
    let direct = ParallelEnumeration::new().run(&grid, &cached);

    // the MethodRunner's EML goes through the factorized tables internally
    let eml = MethodRunner::new(&platform, &workload, Some(&models), 3)
        .with_grid(grid.clone())
        .run(MethodKind::Eml, 0)
        .unwrap();

    assert_eq!(eml.best_config, direct.best_config);
    assert_eq!(eml.search_energy.to_bits(), direct.best_energy.to_bits());
    assert_eq!(eml.evaluations, direct.evaluations);
    assert_eq!(eml.cache.misses as u128, grid.total_configurations());
}
