//! Acceptance tests for the host + N accelerator generalisation: a two-accelerator
//! campaign (host + Xeon Phi + GPU) runs end-to-end through EM and SAML via the
//! standard method pipeline, sharded N-way campaigns are bit-identical to single-node
//! enumeration and resume for free from a warm store, and the `ConfigKey` encoding
//! round-trips for every configuration of the old and new spaces.

use workdist::autotune::{
    campaign_context, run_enumeration_sharded, ConfigurationSpace, DeviceAxis,
    MeasurementEvaluator, MethodKind, MethodRunner, SystemConfiguration, TrainingCampaign,
};
use workdist::dist::{ConfigKey, JsonlStore, MemoryStore, ResultStore};
use workdist::ml::BoostingParams;
use workdist::opt::{ParallelEnumeration, SearchSpace};
use workdist::platform::{Affinity, HeterogeneousPlatform, Partition, WorkloadProfile};

fn two_accelerator_grid() -> ConfigurationSpace {
    ConfigurationSpace::tiny_multi()
}

#[test]
fn two_accelerator_campaign_runs_em_and_saml_through_the_standard_pipeline() {
    let platform = HeterogeneousPlatform::emil_with_gpu();
    let workload = WorkloadProfile::dna_scan("human", 3_170_000_000);
    let grid = two_accelerator_grid();
    assert_eq!(grid.accelerator_count(), platform.accelerator_count());

    // one trained model per accelerator
    let models = TrainingCampaign::reduced_for(&platform).run(&platform, BoostingParams::fast());
    assert_eq!(models.device_model_count(), 2);

    // EM and SAML run through the exact same MethodRunner the host+1 pipeline uses
    let runner = MethodRunner::new(&platform, &workload, Some(&models), 7)
        .with_grid(grid.clone())
        .with_space(grid.clone());
    let em = runner.run(MethodKind::Em, 0).unwrap();
    let saml = runner.run(MethodKind::Saml, 300).unwrap();

    assert_eq!(em.evaluations as u128, grid.total_configurations());
    assert_eq!(em.best_config.accelerator_count(), 2);
    assert!(em.measured_energy > 0.0 && em.measured_energy.is_finite());
    assert!(saml.measured_energy.is_finite());
    assert_eq!(saml.best_config.accelerator_count(), 2);
    assert!(saml.evaluations < em.evaluations);
    // EM is the optimum of the grid; SAML on the same space cannot beat it beyond noise
    assert!(saml.measured_energy >= em.measured_energy * 0.9);

    // splitting across host + two accelerators beats the single-accelerator optimum of
    // the comparable host + Phi sub-space (the whole point of N-way distribution)
    let single_grid = ConfigurationSpace::two_way(
        grid.host_threads.clone(),
        grid.host_affinities.clone(),
        grid.device_axes[0].threads.clone(),
        grid.device_axes[0].affinities.clone(),
        (0..=10).map(|p| p * 100).collect(),
    );
    let single_platform = HeterogeneousPlatform::emil();
    let single_em = MethodRunner::new(&single_platform, &workload, None, 7)
        .with_grid(single_grid)
        .run(MethodKind::Em, 0)
        .unwrap();
    assert!(
        em.measured_energy < single_em.measured_energy,
        "three-way optimum ({}) should beat the host+Phi optimum ({})",
        em.measured_energy,
        single_em.measured_energy
    );
}

#[test]
fn sharded_n_way_enumeration_is_bit_identical_and_resumes_for_free() {
    let platform = HeterogeneousPlatform::emil_with_gpu();
    let workload = WorkloadProfile::dna_scan("human", 3_170_000_000);
    let grid = two_accelerator_grid();

    // single-node reference over the N-way grid
    let evaluator = MeasurementEvaluator::new(platform.clone(), workload.clone());
    let single = ParallelEnumeration::new().run(&grid, &evaluator);

    // sharded campaigns match bit-for-bit at every shard count
    for shards in [1usize, 3, 8] {
        let store = MemoryStore::new();
        let sharded = run_enumeration_sharded(
            &platform,
            &workload,
            None,
            MethodKind::Em,
            &grid,
            shards,
            &store,
        )
        .unwrap();
        assert_eq!(sharded.best_config, single.best_config, "{shards} shards");
        assert_eq!(
            sharded.search_energy.to_bits(),
            single.best_energy.to_bits()
        );
        assert_eq!(sharded.evaluations, single.evaluations);
    }

    // a persistent store resumes the N-way campaign with zero evaluations
    let path =
        std::env::temp_dir().join(format!("workdist-multi-accel-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let context = campaign_context(MethodKind::Em, &workload);
    let cold = {
        let store: JsonlStore<SystemConfiguration> =
            JsonlStore::open_with_context(&path, &context).unwrap();
        run_enumeration_sharded(&platform, &workload, None, MethodKind::Em, &grid, 4, &store)
            .unwrap()
    };
    assert_eq!(cold.cache.hits, 0);
    assert_eq!(cold.cache.misses as u128, grid.total_configurations());

    let store: JsonlStore<SystemConfiguration> =
        JsonlStore::open_with_context(&path, &context).unwrap();
    assert_eq!(store.len() as u128, grid.total_configurations());
    let warm =
        run_enumeration_sharded(&platform, &workload, None, MethodKind::Em, &grid, 4, &store)
            .unwrap();
    assert_eq!(warm.cache.misses, 0, "warm N-way store answers everything");
    assert_eq!(warm.best_config, cold.best_config);
    assert_eq!(warm.search_energy.to_bits(), cold.search_energy.to_bits());
    assert_eq!(warm.best_config, single.best_config);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn config_keys_round_trip_for_the_whole_paper_space() {
    // every configuration of the paper's (single-accelerator) Table I space
    let space = ConfigurationSpace::paper();
    for config in space.enumerate().unwrap() {
        let key = config.encode_key();
        assert!(!key.contains(['"', '\\', '\n', '\r']));
        assert_eq!(
            SystemConfiguration::decode_key(&key),
            Some(config),
            "key {key}"
        );
    }
}

#[test]
fn config_keys_round_trip_and_partitions_validate_for_n_way_spaces() {
    // a two- and a three-accelerator space
    let spaces = [
        two_accelerator_grid(),
        ConfigurationSpace::multi_accelerator(
            vec![24, 48],
            vec![Affinity::Scatter],
            vec![
                DeviceAxis::new(vec![240], vec![Affinity::Balanced]),
                DeviceAxis::new(vec![448], vec![Affinity::Balanced]),
                DeviceAxis::new(vec![64], vec![Affinity::Compact]),
            ],
            250,
        ),
    ];
    for space in spaces {
        let all = space.enumerate().unwrap();
        assert_eq!(all.len() as u128, space.total_configurations());
        for config in all {
            // the key encoding round-trips
            let key = config.encode_key();
            assert!(!key.contains(['"', '\\', '\n', '\r']));
            assert_eq!(
                SystemConfiguration::decode_key(&key),
                Some(config.clone()),
                "key {key}"
            );
            // and the N-way partition always satisfies Partition::new's validation
            let fractions: Vec<f64> = config
                .split()
                .iter()
                .map(|&p| f64::from(p) / 1000.0)
                .collect();
            let partition = Partition::new(fractions).expect("simplex split is a valid partition");
            assert_eq!(partition.accelerator_count(), space.accelerator_count());
            assert_eq!(config.partition(), partition);
        }
    }
}

#[test]
fn neighbor_moves_stay_on_the_simplex_for_n_way_spaces() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let space = two_accelerator_grid();
    let mut rng = StdRng::seed_from_u64(11);
    let mut config = space.random(&mut rng);
    for _ in 0..500 {
        config = space.neighbor(&config, &mut rng);
        assert_eq!(config.split().iter().sum::<u32>(), 1000);
        // the partition the evaluator would build is always valid
        let _ = config.partition();
    }
}
